#include "hardness/gadgets.hpp"

#include <gtest/gtest.h>

#include <functional>

#include "graph/bipartite.hpp"
#include "graph/coloring.hpp"

namespace bisched {
namespace {

// Enumerate every proper coloring of g with `k` colors and invoke `check`.
void for_each_proper_coloring(const Graph& g, int k,
                              const std::function<void(const std::vector<int>&)>& check) {
  std::vector<int> colors(static_cast<std::size_t>(g.num_vertices()), -1);
  std::function<void(int)> rec = [&](int v) {
    if (v == g.num_vertices()) {
      check(colors);
      return;
    }
    for (int c = 0; c < k; ++c) {
      bool ok = true;
      for (int u : g.neighbors(v)) {
        if (u < v && colors[static_cast<std::size_t>(u)] == c) {
          ok = false;
          break;
        }
      }
      if (ok) {
        colors[static_cast<std::size_t>(v)] = c;
        rec(v + 1);
        colors[static_cast<std::size_t>(v)] = -1;
      }
    }
  };
  rec(0);
}

int count_where(const std::vector<int>& colors, const std::function<bool(int)>& pred) {
  int count = 0;
  for (int c : colors) count += pred(c);
  return count;
}

TEST(Gadgets, SizesAndBipartiteness) {
  Graph g(1);
  const auto h1 = attach_h1(g, 0, 5);
  EXPECT_EQ(h1.num_vertices(), 5);
  const auto h2 = attach_h2(g, 0, 3, 7);
  EXPECT_EQ(h2.num_vertices(), 10);
  const auto h3 = attach_h3(g, 0, 1, 3, 7);
  EXPECT_EQ(h3.num_vertices(), 1 + 3 + 7 + 7);
  EXPECT_TRUE(bipartition(g).has_value());
}

TEST(Gadgets, EdgeCounts) {
  Graph g(1);
  attach_h2(g, 0, 3, 4);
  // v-B: 3, B-A: 12.
  EXPECT_EQ(g.num_edges(), 15);
  Graph g2(1);
  attach_h3(g2, 0, 2, 3, 4);
  // v-C: 2, C-B: 6, C-A*: 8, B-A: 12.
  EXPECT_EQ(g2.num_edges(), 28);
}

// Lemma 5: in every proper coloring, v != c1 OR >= x vertices colored != c1.
TEST(Gadgets, Lemma5HoldsExhaustively) {
  const int x = 3;
  Graph g(1);
  attach_h1(g, 0, x);
  int colorings = 0;
  for_each_proper_coloring(g, 3, [&](const std::vector<int>& colors) {
    ++colorings;
    const bool v_not_c1 = colors[0] != 0;
    const int off_c1 = count_where(colors, [](int c) { return c != 0; }) - (colors[0] != 0);
    EXPECT_TRUE(v_not_c1 || off_c1 >= x) << "Lemma 5 violated";
  });
  EXPECT_GT(colorings, 0);
}

// Lemma 6: v != c2 OR >= x' vertices outside {c1,c2} OR >= x vertices != c1.
TEST(Gadgets, Lemma6HoldsExhaustively) {
  const int x_prime = 2, x = 3;
  Graph g(1);
  attach_h2(g, 0, x_prime, x);
  int colorings = 0;
  for_each_proper_coloring(g, 3, [&](const std::vector<int>& colors) {
    ++colorings;
    const bool v_not_c2 = colors[0] != 1;
    // Counts over the gadget vertices (exclude the attachment vertex, which
    // only strengthens the statement if included).
    int outside12 = 0, not1 = 0;
    for (std::size_t i = 1; i < colors.size(); ++i) {
      outside12 += colors[i] != 0 && colors[i] != 1;
      not1 += colors[i] != 0;
    }
    EXPECT_TRUE(v_not_c2 || outside12 >= x_prime || not1 >= x) << "Lemma 6 violated";
  });
  EXPECT_GT(colorings, 0);
}

// Lemma 7: v != c3 OR >= x'' outside {c1,c2,c3} OR >= x' outside {c1,c2}
// OR >= x vertices != c1. Checked with 4 colors so the "outside {c1,c2,c3}"
// branch is reachable.
TEST(Gadgets, Lemma7HoldsExhaustively) {
  const int x_dprime = 1, x_prime = 2, x = 2;
  Graph g(1);
  attach_h3(g, 0, x_dprime, x_prime, x);
  int colorings = 0;
  for_each_proper_coloring(g, 4, [&](const std::vector<int>& colors) {
    ++colorings;
    const bool v_not_c3 = colors[0] != 2;
    int outside123 = 0, outside12 = 0, not1 = 0;
    for (std::size_t i = 1; i < colors.size(); ++i) {
      outside123 += colors[i] > 2;
      outside12 += colors[i] != 0 && colors[i] != 1;
      not1 += colors[i] != 0;
    }
    EXPECT_TRUE(v_not_c3 || outside123 >= x_dprime || outside12 >= x_prime || not1 >= x)
        << "Lemma 7 violated";
  });
  EXPECT_GT(colorings, 0);
}

// The YES-side colorings promised in gadgets.hpp exist and are proper.
TEST(Gadgets, YesSideColoringsExist) {
  {
    // H2 attached to a c1 vertex: B = c2, A = c1.
    Graph g(1);
    const auto rows = attach_h2(g, 0, 2, 3);
    std::vector<int> colors(static_cast<std::size_t>(g.num_vertices()), -1);
    colors[0] = 0;
    for (int v : rows.row_b) colors[static_cast<std::size_t>(v)] = 1;
    for (int v : rows.row_a) colors[static_cast<std::size_t>(v)] = 0;
    EXPECT_TRUE(is_proper_coloring(g, colors));
  }
  {
    // H3 attached to a c1 vertex: C = c3, B = c2, A = A* = c1.
    Graph g(1);
    const auto rows = attach_h3(g, 0, 1, 2, 3);
    std::vector<int> colors(static_cast<std::size_t>(g.num_vertices()), -1);
    colors[0] = 0;
    for (int v : rows.row_c) colors[static_cast<std::size_t>(v)] = 2;
    for (int v : rows.row_b) colors[static_cast<std::size_t>(v)] = 1;
    for (int v : rows.row_a) colors[static_cast<std::size_t>(v)] = 0;
    for (int v : rows.row_a_star) colors[static_cast<std::size_t>(v)] = 0;
    EXPECT_TRUE(is_proper_coloring(g, colors));
  }
  {
    // H3 attached to a c2 vertex works identically (C = c3 avoids it).
    Graph g(1);
    const auto rows = attach_h3(g, 0, 1, 2, 3);
    std::vector<int> colors(static_cast<std::size_t>(g.num_vertices()), -1);
    colors[0] = 1;
    for (int v : rows.row_c) colors[static_cast<std::size_t>(v)] = 2;
    for (int v : rows.row_b) colors[static_cast<std::size_t>(v)] = 1;
    for (int v : rows.row_a) colors[static_cast<std::size_t>(v)] = 0;
    for (int v : rows.row_a_star) colors[static_cast<std::size_t>(v)] = 0;
    EXPECT_TRUE(is_proper_coloring(g, colors));
  }
}

// Parameterized sweeps: the lemma disjunctions hold exhaustively for every
// small parameter combination, not just the single sizes above.
class H1Sweep : public ::testing::TestWithParam<int> {};

TEST_P(H1Sweep, Lemma5Exhaustive) {
  const int x = GetParam();
  Graph g(1);
  attach_h1(g, 0, x);
  int colorings = 0;
  for_each_proper_coloring(g, 3, [&](const std::vector<int>& colors) {
    ++colorings;
    int off1 = 0;
    for (std::size_t i = 1; i < colors.size(); ++i) off1 += colors[i] != 0;
    EXPECT_TRUE(colors[0] != 0 || off1 >= x);
  });
  EXPECT_GT(colorings, 0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, H1Sweep, ::testing::Values(1, 2, 3, 4, 5));

class H2Sweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(H2Sweep, Lemma6Exhaustive) {
  const auto [x_prime, x] = GetParam();
  Graph g(1);
  attach_h2(g, 0, x_prime, x);
  int colorings = 0;
  for_each_proper_coloring(g, 3, [&](const std::vector<int>& colors) {
    ++colorings;
    int out12 = 0, off1 = 0;
    for (std::size_t i = 1; i < colors.size(); ++i) {
      out12 += colors[i] != 0 && colors[i] != 1;
      off1 += colors[i] != 0;
    }
    EXPECT_TRUE(colors[0] != 1 || out12 >= x_prime || off1 >= x);
  });
  EXPECT_GT(colorings, 0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, H2Sweep,
                         ::testing::Values(std::pair{1, 1}, std::pair{1, 3}, std::pair{2, 2},
                                           std::pair{2, 4}, std::pair{3, 3}));

class H3Sweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(H3Sweep, Lemma7Exhaustive) {
  const auto [x_dp, x_p, x] = GetParam();
  Graph g(1);
  attach_h3(g, 0, x_dp, x_p, x);
  int colorings = 0;
  for_each_proper_coloring(g, 4, [&](const std::vector<int>& colors) {
    ++colorings;
    int out123 = 0, out12 = 0, off1 = 0;
    for (std::size_t i = 1; i < colors.size(); ++i) {
      out123 += colors[i] > 2;
      out12 += colors[i] != 0 && colors[i] != 1;
      off1 += colors[i] != 0;
    }
    EXPECT_TRUE(colors[0] != 2 || out123 >= x_dp || out12 >= x_p || off1 >= x);
  });
  EXPECT_GT(colorings, 0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, H3Sweep,
                         ::testing::Values(std::tuple{1, 1, 1}, std::tuple{1, 2, 2},
                                           std::tuple{1, 1, 3}, std::tuple{2, 1, 2}));

TEST(Gadgets, AttachmentPreservesHostBipartiteness) {
  Graph g = Graph(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  attach_h1(g, 0, 4);
  attach_h2(g, 1, 2, 3);
  attach_h3(g, 3, 1, 2, 4);
  EXPECT_TRUE(bipartition(g).has_value());
}

}  // namespace
}  // namespace bisched

#include "hardness/oneprext.hpp"

#include <gtest/gtest.h>

#include "graph/bipartite.hpp"
#include "graph/coloring.hpp"

namespace bisched {
namespace {

TEST(OnePrExt, TrivialYes) {
  // Three isolated precolored vertices extend trivially.
  OnePrExtInstance inst;
  inst.g = Graph(5);
  inst.precolored = {0, 1, 2};
  const auto sol = solve_one_prext(inst);
  EXPECT_EQ(sol.answer, PrExtAnswer::kYes);
  ASSERT_TRUE(sol.coloring.has_value());
  EXPECT_EQ((*sol.coloring)[0], 0);
  EXPECT_EQ((*sol.coloring)[1], 1);
  EXPECT_EQ((*sol.coloring)[2], 2);
  EXPECT_TRUE(is_proper_coloring(inst.g, *sol.coloring));
}

TEST(OnePrExt, BlockerMakesNo) {
  OnePrExtInstance inst;
  inst.g = Graph(4);
  inst.g.add_edge(3, 0);
  inst.g.add_edge(3, 1);
  inst.g.add_edge(3, 2);
  inst.precolored = {0, 1, 2};
  EXPECT_EQ(solve_one_prext(inst).answer, PrExtAnswer::kNo);
}

TEST(OnePrExt, PropagationChainNo) {
  // v1(c0) - a - v2? Build: a adjacent to v1 and v2 and v3: same blocker but
  // also an extra vertex chained behind a; still NO.
  OnePrExtInstance inst;
  inst.g = Graph(5);
  inst.g.add_edge(3, 0);
  inst.g.add_edge(3, 1);
  inst.g.add_edge(3, 2);
  inst.g.add_edge(3, 4);
  inst.precolored = {0, 1, 2};
  EXPECT_EQ(solve_one_prext(inst).answer, PrExtAnswer::kNo);
}

TEST(OnePrExt, RandomYesInstancesAreYes) {
  Rng rng(21);
  for (int iter = 0; iter < 20; ++iter) {
    const auto inst = random_yes_instance(10 + static_cast<int>(rng.uniform_int(0, 20)),
                                          0.4, rng);
    EXPECT_TRUE(bipartition(inst.g).has_value());
    const auto sol = solve_one_prext(inst);
    EXPECT_EQ(sol.answer, PrExtAnswer::kYes);
    ASSERT_TRUE(sol.coloring.has_value());
    EXPECT_TRUE(is_proper_coloring(inst.g, *sol.coloring));
    for (int c = 0; c < 3; ++c) {
      EXPECT_EQ((*sol.coloring)[inst.precolored[c]], c);
    }
  }
}

TEST(OnePrExt, RandomNoInstancesAreNo) {
  Rng rng(22);
  for (int iter = 0; iter < 20; ++iter) {
    const auto inst = random_no_instance(8 + static_cast<int>(rng.uniform_int(0, 15)),
                                         0.4, rng);
    EXPECT_TRUE(bipartition(inst.g).has_value());
    EXPECT_EQ(solve_one_prext(inst).answer, PrExtAnswer::kNo);
  }
}

TEST(OnePrExt, NodeLimitCanReturnUnknown) {
  Rng rng(23);
  // Large-ish instance with a 1-node budget: either solved instantly by
  // propagation or reported unknown; never a wrong NO.
  const auto inst = random_yes_instance(40, 0.3, rng);
  const auto sol = solve_one_prext(inst, /*max_nodes=*/1);
  EXPECT_NE(sol.answer, PrExtAnswer::kNo);
}

TEST(OnePrExt, PrecoloredVerticesShareSideInGenerators) {
  Rng rng(24);
  const auto inst = random_yes_instance(12, 0.5, rng);
  const auto bp = bipartition(inst.g);
  ASSERT_TRUE(bp.has_value());
  // By construction vertices 0,1,2 are co-sided (so gadgets can attach).
  // They may fall into different components; check no edges among them.
  EXPECT_FALSE(inst.g.has_edge(0, 1));
  EXPECT_FALSE(inst.g.has_edge(0, 2));
  EXPECT_FALSE(inst.g.has_edge(1, 2));
}

}  // namespace
}  // namespace bisched

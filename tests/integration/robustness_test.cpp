// Robustness: degenerate instances through every code path, and failure
// injection — deliberately corrupted schedules must be rejected by
// validation, establishing that `validate` (which every algorithm's output
// is checked against) actually discriminates.
#include <gtest/gtest.h>

#include "core/alg_random.hpp"
#include "core/alg_random_balanced.hpp"
#include "core/alg_sqrt.hpp"
#include "core/baselines.hpp"
#include "core/exact_bb.hpp"
#include "core/q2_unit_exact.hpp"
#include "core/r2_algorithms.hpp"
#include "random/generators.hpp"
#include "sched/lower_bounds.hpp"
#include "testing_util.hpp"
#include "util/prng.hpp"

namespace bisched {
namespace {

// ---- degenerate instances ---------------------------------------------------

TEST(Robustness, SingleJobAllAlgorithms) {
  const auto inst = make_uniform_instance({5}, {3, 1}, Graph(1));
  EXPECT_EQ(alg1_sqrt_approx(inst).cmax, Rational(5, 3));
  EXPECT_EQ(alg2_random_bipartite(inst).cmax, Rational(5, 3));
  EXPECT_EQ(alg2_balanced(inst).cmax, Rational(5, 3));
  const auto exact = exact_uniform_bb(inst);
  ASSERT_TRUE(exact.feasible);
  EXPECT_EQ(exact.cmax, Rational(5, 3));
}

TEST(Robustness, EmptyJobSetUniform) {
  const auto inst = make_uniform_instance({}, {2, 1}, Graph(0));
  EXPECT_EQ(alg2_random_bipartite(inst).cmax, Rational(0));
  EXPECT_EQ(alg2_balanced(inst).cmax, Rational(0));
  const auto exact = exact_uniform_bb(inst);
  ASSERT_TRUE(exact.feasible);
  EXPECT_EQ(exact.cmax, Rational(0));
}

TEST(Robustness, EmptyJobSetUnrelated) {
  const auto inst = make_unrelated_instance({{}, {}}, Graph(0));
  EXPECT_EQ(r2_two_approx(inst).cmax, 0);
  EXPECT_EQ(r2_fptas_bipartite(inst, 0.5).cmax, 0);
  EXPECT_EQ(r2_exact_bipartite(inst).cmax, 0);
}

TEST(Robustness, StarGraphHub) {
  // Hub conflicts with everyone: the hub must sit alone against the leaves.
  const int leaves = 12;
  Graph g = complete_bipartite(1, leaves);
  const auto inst =
      make_uniform_instance(unit_weights(1 + leaves), {4, 2, 1}, std::move(g));
  for (const auto& result :
       {alg1_sqrt_approx(inst).schedule, alg2_random_bipartite(inst).schedule,
        alg2_balanced(inst).schedule}) {
    ASSERT_EQ(validate(inst, result), ScheduleStatus::kValid);
    const int hub_machine = result.machine_of[0];
    for (int leaf = 1; leaf <= leaves; ++leaf) {
      EXPECT_NE(result.machine_of[static_cast<std::size_t>(leaf)], hub_machine);
    }
  }
}

TEST(Robustness, ManyMoreMachinesThanJobs) {
  Rng rng(9);
  const auto inst = testing::random_uniform_instance(2, 2, 12, 5, 3, rng);
  const auto r = alg1_sqrt_approx(inst);
  EXPECT_EQ(validate(inst, r.schedule), ScheduleStatus::kValid);
  const auto exact = exact_uniform_bb(inst);
  ASSERT_TRUE(exact.feasible);
  EXPECT_TRUE(exact.cmax <= r.cmax);
}

TEST(Robustness, MaximallyDenseBipartiteGraph) {
  // K_{6,6}: any machine holds jobs of one side only.
  const auto inst =
      make_uniform_instance(unit_weights(12), {3, 2, 2, 1}, complete_bipartite(6, 6));
  for (const auto& schedule :
       {alg1_sqrt_approx(inst).schedule, alg2_random_bipartite(inst).schedule}) {
    ASSERT_EQ(validate(inst, schedule), ScheduleStatus::kValid);
    for (int u = 0; u < 6; ++u) {
      for (int v = 6; v < 12; ++v) {
        EXPECT_NE(schedule.machine_of[static_cast<std::size_t>(u)],
                  schedule.machine_of[static_cast<std::size_t>(v)]);
      }
    }
  }
}

TEST(Robustness, IdenticalSpeedsEverywhere) {
  Rng rng(10);
  const auto inst = testing::random_uniform_instance(5, 5, 4, 7, 1, rng);
  for (std::int64_t s : inst.speeds) EXPECT_EQ(s, 1);
  const auto r = alg1_sqrt_approx(inst);
  EXPECT_EQ(validate(inst, r.schedule), ScheduleStatus::kValid);
}

TEST(Robustness, HugeSpeedGap) {
  // One machine a million times faster: everything compatible should pile on.
  Graph g(4);
  g.add_edge(0, 1);
  const auto inst = make_uniform_instance({3, 4, 5, 6}, {1000000, 1, 1}, std::move(g));
  const auto r = alg1_sqrt_approx(inst);
  EXPECT_EQ(validate(inst, r.schedule), ScheduleStatus::kValid);
  const auto exact = exact_uniform_bb(inst);
  ASSERT_TRUE(exact.feasible);
  // OPT: jobs {1,2,3} (sum 15... job 0 conflicts job 1 only) — at least one
  // job leaves the fast machine; makespan >= 3/1 on a slow machine or tiny on
  // fast. Exact: put 0 on a slow machine (3), rest on fast (15/1e6).
  EXPECT_EQ(exact.cmax, Rational(3));
  testing::expect_le_sqrt_times(r.cmax, inst.total_work(), exact.cmax, "huge gap");
}

// ---- failure injection -------------------------------------------------------

TEST(FailureInjection, CorruptedSchedulesAreRejected) {
  Rng rng(11);
  for (int iter = 0; iter < 20; ++iter) {
    const auto inst = testing::random_uniform_instance(4, 4, 3, 6, 3, rng);
    if (inst.conflicts.num_edges() == 0) continue;
    auto r = alg2_random_bipartite(inst);
    ASSERT_EQ(validate(inst, r.schedule), ScheduleStatus::kValid);

    // Force both endpoints of some edge onto the same machine.
    int u = -1, v = -1;
    for (int cand = 0; cand < inst.num_jobs() && u == -1; ++cand) {
      if (inst.conflicts.degree(cand) > 0) {
        u = cand;
        v = inst.conflicts.neighbors(cand)[0];
      }
    }
    ASSERT_NE(u, -1);
    Schedule corrupted = r.schedule;
    corrupted.machine_of[static_cast<std::size_t>(v)] =
        corrupted.machine_of[static_cast<std::size_t>(u)];
    EXPECT_EQ(validate(inst, corrupted), ScheduleStatus::kConflictViolated);
  }
}

TEST(FailureInjection, TruncatedScheduleRejected) {
  Rng rng(12);
  const auto inst = testing::random_uniform_instance(3, 3, 2, 5, 2, rng);
  auto r = alg2_random_bipartite(inst);
  r.schedule.machine_of.pop_back();
  EXPECT_EQ(validate(inst, r.schedule), ScheduleStatus::kWrongJobCount);
}

TEST(FailureInjection, OutOfRangeMachineRejected) {
  Rng rng(13);
  const auto inst = testing::random_uniform_instance(3, 3, 2, 5, 2, rng);
  auto r = alg2_random_bipartite(inst);
  r.schedule.machine_of[0] = inst.num_machines();
  EXPECT_EQ(validate(inst, r.schedule), ScheduleStatus::kMachineOutOfRange);
}

TEST(FailureInjection, PerturbedOptimalScheduleNeverImproves) {
  // Local perturbations of the exact optimum can only keep or worsen the
  // makespan (or break validity) — a sanity property of optimality.
  Rng rng(14);
  for (int iter = 0; iter < 15; ++iter) {
    const auto inst = testing::random_uniform_instance(3, 3, 3, 6, 3, rng);
    const auto exact = exact_uniform_bb(inst);
    ASSERT_TRUE(exact.feasible);
    for (int move = 0; move < 10; ++move) {
      Schedule perturbed = exact.schedule;
      const auto job = static_cast<std::size_t>(rng.uniform_int(0, inst.num_jobs() - 1));
      perturbed.machine_of[job] =
          static_cast<int>(rng.uniform_int(0, inst.num_machines() - 1));
      if (validate(inst, perturbed) != ScheduleStatus::kValid) continue;
      EXPECT_TRUE(exact.cmax <= makespan(inst, perturbed));
    }
  }
}

// ---- cross-checks of the certified lower bound -------------------------------

TEST(Robustness, LowerBoundNeverExceedsAnyAlgorithm) {
  Rng rng(15);
  for (int iter = 0; iter < 25; ++iter) {
    const auto inst = testing::random_uniform_instance(
        3 + static_cast<int>(rng.uniform_int(0, 5)), 3 + static_cast<int>(rng.uniform_int(0, 5)),
        2 + static_cast<int>(rng.uniform_int(0, 4)), 9, 5, rng);
    const Rational lb = lower_bound(inst);
    EXPECT_TRUE(lb <= alg1_sqrt_approx(inst).cmax);
    EXPECT_TRUE(lb <= alg2_random_bipartite(inst).cmax);
    EXPECT_TRUE(lb <= alg2_balanced(inst).cmax);
    EXPECT_TRUE(lb <= two_color_split(inst).cmax);
    EXPECT_TRUE(lb <= class_proportional_split(inst).cmax);
  }
}

TEST(Robustness, UnitJobsQ2AllSolversAgreeOnDegenerateGraphs) {
  // Graph families with extreme component structure.
  for (const Graph& g : {Graph(8), complete_bipartite(4, 4), crown(4), path_graph(8)}) {
    const auto inst = make_uniform_instance(unit_weights(8), {3, 2}, Graph(g));
    const auto dp = q2_unit_exact_dp(inst);
    const auto bb = exact_uniform_bb(inst);
    ASSERT_TRUE(bb.feasible);
    EXPECT_EQ(dp.cmax, bb.cmax);
  }
}

}  // namespace
}  // namespace bisched

// Cross-API consistency properties that no single module test pins down.
#include <gtest/gtest.h>

#include "core/alg_random_balanced.hpp"
#include "core/q2_general.hpp"
#include "graph/bipartite.hpp"
#include "random/generators.hpp"
#include "sched/lower_bounds.hpp"
#include "testing_util.hpp"
#include "util/prng.hpp"

namespace bisched {
namespace {

// The Q -> R embedding of instance.hpp must scale EVERY schedule's makespan
// by exactly the lcm factor — not just optimal ones.
TEST(Consistency, UniformAsUnrelatedScalesAllSchedules) {
  Rng rng(71);
  for (int iter = 0; iter < 20; ++iter) {
    const auto q2 = testing::random_uniform_instance(3, 3, 2, 9, 6, rng);
    std::int64_t scale = 0;
    const auto r2 = uniform_as_unrelated(q2, 0, 2, &scale);
    for (int trial = 0; trial < 10; ++trial) {
      Schedule s;
      s.machine_of.resize(static_cast<std::size_t>(q2.num_jobs()));
      for (auto& machine : s.machine_of) machine = static_cast<int>(rng.uniform_int(0, 1));
      if (validate(q2, s) != ScheduleStatus::kValid) continue;
      EXPECT_EQ(Rational(makespan(r2, s), scale), makespan(q2, s));
    }
  }
}

// Embedding preserves the conflict graph, so validity is equivalent.
TEST(Consistency, EmbeddingPreservesValidity) {
  Rng rng(72);
  const auto q2 = testing::random_uniform_instance(4, 4, 2, 5, 3, rng);
  const auto r2 = uniform_as_unrelated(q2, 0, 2);
  for (int trial = 0; trial < 30; ++trial) {
    Schedule s;
    s.machine_of.resize(static_cast<std::size_t>(q2.num_jobs()));
    for (auto& machine : s.machine_of) machine = static_cast<int>(rng.uniform_int(0, 1));
    EXPECT_EQ(validate(q2, s), validate(r2, s));
  }
}

TEST(Consistency, LowerBoundSurvivesNonBipartiteGraphs) {
  // Odd cycle: lb_off_machine1 must gracefully decline, not abort, and the
  // combined bound still works from the other two components.
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  const auto inst = make_uniform_instance({4, 4, 4}, {2, 1, 1}, std::move(g));
  EXPECT_FALSE(lb_off_machine1(inst).has_value());
  EXPECT_TRUE(lower_bound(inst) >= lb_pmax(inst));
  EXPECT_TRUE(lower_bound(inst) >= lb_cover_all(inst));
}

TEST(Consistency, Q2FptasEpsOneIsTwoApproximate) {
  Rng rng(73);
  for (int iter = 0; iter < 15; ++iter) {
    const auto inst = testing::random_uniform_instance(
        2 + static_cast<int>(rng.uniform_int(0, 4)), 2 + static_cast<int>(rng.uniform_int(0, 4)),
        2, 9, 4, rng);
    const auto coarse = q2_fptas(inst, 1.0);
    const auto exact = q2_weighted_exact_dp(inst);
    EXPECT_TRUE(coarse.cmax <= exact.cmax * Rational(2));
    EXPECT_TRUE(exact.cmax <= coarse.cmax);
  }
}

TEST(Consistency, Alg2BalancedNeverInvalidEvenOnDenseGraphs) {
  Rng rng(74);
  for (double density : {0.0, 0.3, 1.0}) {
    const int a = 6, b = 6;
    const auto m = static_cast<std::int64_t>(density * a * b);
    Graph g = random_bipartite_edges(a, b, m, rng);
    const auto inst = make_uniform_instance(uniform_weights(a + b, 1, 9, rng),
                                            {7, 3, 1}, std::move(g));
    const auto r = alg2_balanced(inst);
    EXPECT_EQ(validate(inst, r.schedule), ScheduleStatus::kValid) << density;
    EXPECT_TRUE(lower_bound(inst) <= r.cmax);
  }
}

// Component lists of bipartition and connected_components agree.
TEST(Consistency, BipartitionAndComponentsAgree) {
  Rng rng(75);
  for (int iter = 0; iter < 20; ++iter) {
    const int a = 1 + static_cast<int>(rng.uniform_int(0, 6));
    const int b = 1 + static_cast<int>(rng.uniform_int(0, 6));
    const Graph g = random_bipartite_edges(
        a, b, rng.uniform_int(0, static_cast<std::int64_t>(a) * b / 2), rng);
    const auto bp = bipartition(g);
    const auto cc = connected_components(g);
    ASSERT_TRUE(bp.has_value());
    EXPECT_EQ(bp->num_components, cc.num_components);
    EXPECT_EQ(bp->component_vertices, cc.component_vertices);
  }
}

}  // namespace
}  // namespace bisched

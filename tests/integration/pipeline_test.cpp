// Cross-module property tests: every algorithm, on shared random instances,
// must emit validating schedules whose makespans sit between the certified
// lower bound and its proven guarantee against the exact optimum.
#include <gtest/gtest.h>

#include <tuple>

#include "core/alg_random.hpp"
#include "core/alg_sqrt.hpp"
#include "core/baselines.hpp"
#include "core/exact_bb.hpp"
#include "core/q2_unit_exact.hpp"
#include "core/r2_algorithms.hpp"
#include "random/gilbert.hpp"
#include "sched/list_schedule.hpp"
#include "sched/lower_bounds.hpp"
#include "testing_util.hpp"

namespace bisched {
namespace {

// (part_a, part_b, machines, weight_max, speed_max, seed)
using UniformParams = std::tuple<int, int, int, int, int, std::uint64_t>;

class UniformPipeline : public ::testing::TestWithParam<UniformParams> {};

TEST_P(UniformPipeline, AllAlgorithmsAgreeOnContracts) {
  const auto [a, b, m, wmax, smax, seed] = GetParam();
  Rng rng(seed);
  const auto inst = testing::random_uniform_instance(a, b, m, wmax, smax, rng);

  const Rational lb = lower_bound(inst);
  const auto exact = exact_uniform_bb(inst);
  ASSERT_TRUE(exact.feasible);
  EXPECT_TRUE(lb <= exact.cmax);

  // Algorithm 1 (Theorem 9).
  const auto a1 = alg1_sqrt_approx(inst);
  ASSERT_EQ(validate(inst, a1.schedule), ScheduleStatus::kValid);
  EXPECT_TRUE(exact.cmax <= a1.cmax);
  testing::expect_le_sqrt_times(a1.cmax, inst.total_work(), exact.cmax, "Alg1 pipeline");

  // Algorithm 2 (valid on any bipartite instance; guarantee is for G(n,n,p)).
  const auto a2 = alg2_random_bipartite(inst);
  ASSERT_EQ(validate(inst, a2.schedule), ScheduleStatus::kValid);
  EXPECT_TRUE(exact.cmax <= a2.cmax);
  EXPECT_TRUE(lb <= a2.cmax);

  if (m >= 2) {
    const auto split = two_color_split(inst);
    ASSERT_EQ(validate(inst, split.schedule), ScheduleStatus::kValid);
    EXPECT_TRUE(exact.cmax <= split.cmax);
    const auto prop = class_proportional_split(inst);
    ASSERT_EQ(validate(inst, prop.schedule), ScheduleStatus::kValid);
    EXPECT_TRUE(exact.cmax <= prop.cmax);
  }

  Schedule greedy;
  if (greedy_conflict_lpt(inst, greedy)) {
    ASSERT_EQ(validate(inst, greedy), ScheduleStatus::kValid);
    EXPECT_TRUE(exact.cmax <= makespan(inst, greedy));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, UniformPipeline,
    ::testing::Combine(::testing::Values(2, 4), ::testing::Values(2, 5),
                       ::testing::Values(2, 3, 5), ::testing::Values(1, 7),
                       ::testing::Values(1, 4),
                       ::testing::Values<std::uint64_t>(1, 99)));

// (part_a, part_b, time_max, eps_percent, seed)
using R2Params = std::tuple<int, int, int, int, std::uint64_t>;

class R2Pipeline : public ::testing::TestWithParam<R2Params> {};

TEST_P(R2Pipeline, ReductionApproxAndFptasContracts) {
  const auto [a, b, tmax, eps_pct, seed] = GetParam();
  Rng rng(seed);
  const auto inst = testing::random_r2_instance(a, b, tmax, rng);
  const double eps = eps_pct / 100.0;

  const auto exact = exact_unrelated_bb(inst);
  ASSERT_TRUE(exact.feasible);

  const auto approx = r2_two_approx(inst);
  ASSERT_EQ(validate(inst, approx.schedule), ScheduleStatus::kValid);
  EXPECT_GE(approx.cmax, exact.cmax);
  EXPECT_LE(approx.cmax, 2 * exact.cmax);

  const auto fptas = r2_fptas_bipartite(inst, eps);
  ASSERT_EQ(validate(inst, fptas.schedule), ScheduleStatus::kValid);
  EXPECT_GE(fptas.cmax, exact.cmax);
  EXPECT_LE(static_cast<double>(fptas.cmax),
            (1.0 + eps) * static_cast<double>(exact.cmax) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, R2Pipeline,
                         ::testing::Combine(::testing::Values(2, 4), ::testing::Values(3, 5),
                                            ::testing::Values(1, 20),
                                            ::testing::Values(100, 25, 5),
                                            ::testing::Values<std::uint64_t>(7, 1234)));

// Unit-job Q2 instances: all three exact routes agree.
class Q2Pipeline : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(Q2Pipeline, ThreeExactRoutesAgree) {
  const auto [n_half, smax, seed] = GetParam();
  Rng rng(seed);
  Graph g = gilbert_bipartite(n_half, 0.35, rng);
  const auto inst = make_uniform_instance(unit_weights(2 * n_half),
                                          {rng.uniform_int(1, smax), rng.uniform_int(1, smax)},
                                          std::move(g));
  const auto dp = q2_unit_exact_dp(inst);
  const auto via = q2_unit_exact_via_fptas(inst);
  const auto bb = exact_uniform_bb(inst);
  ASSERT_TRUE(bb.feasible);
  EXPECT_EQ(dp.cmax, bb.cmax);
  EXPECT_EQ(via.cmax, bb.cmax);
  EXPECT_EQ(validate(inst, dp.schedule), ScheduleStatus::kValid);
  EXPECT_EQ(validate(inst, via.schedule), ScheduleStatus::kValid);
}

INSTANTIATE_TEST_SUITE_P(Sweep, Q2Pipeline,
                         ::testing::Combine(::testing::Values(3, 5, 7), ::testing::Values(1, 5),
                                            ::testing::Values<std::uint64_t>(3, 17, 2029)));

// Gilbert-model end-to-end: Algorithm 2's ratio against the certified LB on
// larger instances (no exact solve), across the paper's p(n) regimes.
class GilbertRegimeSweep : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(GilbertRegimeSweep, Alg2ValidAndBoundedByCoarseFactor) {
  const auto [n, p] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n * 1000) + static_cast<std::uint64_t>(p * 100));
  Graph g = gilbert_bipartite(n, p, rng);
  const auto inst =
      make_uniform_instance(unit_weights(2 * n), {7, 3, 2, 1, 1, 1}, std::move(g));
  const auto r = alg2_random_bipartite(inst);
  ASSERT_EQ(validate(inst, r.schedule), ScheduleStatus::kValid);
  const double ratio = r.cmax.to_double() / lower_bound(inst).to_double();
  EXPECT_GE(ratio, 1.0 - 1e-9);
  EXPECT_LE(ratio, 4.0) << "n=" << n << " p=" << p;  // coarse sanity envelope
}

INSTANTIATE_TEST_SUITE_P(Sweep, GilbertRegimeSweep,
                         ::testing::Combine(::testing::Values(40, 120),
                                            ::testing::Values(0.004, 0.02, 0.1, 0.5)));

}  // namespace
}  // namespace bisched

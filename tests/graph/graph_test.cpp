#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace bisched {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(Graph, AddEdgesAndDegrees) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(1), 3);
  EXPECT_EQ(g.degree(2), 1);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(2, 3));
}

TEST(Graph, AddVertexGrows) {
  Graph g(2);
  const int v = g.add_vertex();
  EXPECT_EQ(v, 2);
  EXPECT_EQ(g.num_vertices(), 3);
  const int first = g.add_vertices(5);
  EXPECT_EQ(first, 3);
  EXPECT_EQ(g.num_vertices(), 8);
  g.add_edge(v, first + 4);
  EXPECT_TRUE(g.has_edge(2, 7));
}

TEST(Graph, IndependenceMask) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const std::vector<std::uint8_t> independent{1, 0, 1, 0};
  const std::vector<std::uint8_t> dependent{1, 1, 0, 0};
  EXPECT_TRUE(g.is_independent_mask(independent));
  EXPECT_FALSE(g.is_independent_mask(dependent));
  const std::vector<int> list_ok{0, 2};
  const std::vector<int> list_bad{2, 3};
  EXPECT_TRUE(g.is_independent_list(list_ok));
  EXPECT_FALSE(g.is_independent_list(list_bad));
}

TEST(Graph, EmptySubsetIsIndependent) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_TRUE(g.is_independent_list(std::vector<int>{}));
}

TEST(Graph, InducedSubgraph) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  std::vector<int> keep{1, 2, 4};
  std::vector<int> old_of_new;
  const Graph sub = induced_subgraph(g, keep, &old_of_new);
  EXPECT_EQ(sub.num_vertices(), 3);
  EXPECT_EQ(sub.num_edges(), 1);  // only (1,2) survives
  EXPECT_TRUE(sub.has_edge(0, 1));
  EXPECT_EQ(old_of_new, keep);
}

TEST(Graph, AppendDisjoint) {
  Graph g(2);
  g.add_edge(0, 1);
  Graph other(3);
  other.add_edge(0, 2);
  const int offset = append_disjoint(g, other);
  EXPECT_EQ(offset, 2);
  EXPECT_EQ(g.num_vertices(), 5);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_TRUE(g.has_edge(2, 4));
  EXPECT_FALSE(g.has_edge(1, 2));
}

TEST(GraphDeath, SelfLoopRejected) {
  Graph g(2);
  EXPECT_DEATH(g.add_edge(1, 1), "self-loop");
}

TEST(GraphDeath, OutOfRangeRejected) {
  Graph g(2);
  EXPECT_DEATH(g.add_edge(0, 2), "out of range");
}

}  // namespace
}  // namespace bisched

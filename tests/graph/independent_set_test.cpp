#include "graph/independent_set.hpp"

#include <gtest/gtest.h>

#include "random/generators.hpp"
#include "util/prng.hpp"

namespace bisched {
namespace {

TEST(Mwis, SingleEdgePicksHeavierEndpoint) {
  Graph g(2);
  g.add_edge(0, 1);
  const auto bp = bipartition(g);
  ASSERT_TRUE(bp.has_value());
  std::vector<std::int64_t> w{3, 8};
  const auto r = max_weight_independent_set(g, *bp, w);
  EXPECT_EQ(r.weight, 8);
  EXPECT_FALSE(r.in_set[0]);
  EXPECT_TRUE(r.in_set[1]);
}

TEST(Mwis, CompleteBipartitePicksHeavierSide) {
  const Graph g = complete_bipartite(2, 3);
  const auto bp = bipartition(g);
  ASSERT_TRUE(bp.has_value());
  std::vector<std::int64_t> w{10, 10, 1, 1, 1};  // side A heavy
  const auto r = max_weight_independent_set(g, *bp, w);
  EXPECT_EQ(r.weight, 20);
}

TEST(Mwis, IsolatedVerticesAlwaysIncludable) {
  Graph g(4);
  g.add_edge(0, 1);
  const auto bp = bipartition(g);
  ASSERT_TRUE(bp.has_value());
  std::vector<std::int64_t> w{5, 5, 7, 7};
  const auto r = max_weight_independent_set(g, *bp, w);
  EXPECT_EQ(r.weight, 5 + 7 + 7);
}

TEST(Mwis, MatchesBruteForceOnRandomGraphs) {
  Rng rng(4242);
  for (int iter = 0; iter < 60; ++iter) {
    const int a = 1 + static_cast<int>(rng.uniform_int(0, 5));
    const int b = 1 + static_cast<int>(rng.uniform_int(0, 5));
    const std::int64_t max_m = static_cast<std::int64_t>(a) * b;
    const Graph g = random_bipartite_edges(a, b, rng.uniform_int(0, max_m), rng);
    std::vector<std::int64_t> w(a + b);
    for (auto& x : w) x = rng.uniform_int(0, 15);
    const auto bp = bipartition(g);
    ASSERT_TRUE(bp.has_value());
    const auto fast = max_weight_independent_set(g, *bp, w);
    const auto brute = max_weight_independent_set_brute(g, w);
    EXPECT_EQ(fast.weight, brute.weight);
    EXPECT_TRUE(g.is_independent_mask(fast.in_set));
    // Reported weight matches the actual set content.
    std::int64_t recomputed = 0;
    for (int v = 0; v < g.num_vertices(); ++v) {
      if (fast.in_set[v]) recomputed += w[v];
    }
    EXPECT_EQ(recomputed, fast.weight);
  }
}

TEST(MwisSuperset, NulloptWhenForcedSetNotIndependent) {
  Graph g(2);
  g.add_edge(0, 1);
  const auto bp = bipartition(g);
  ASSERT_TRUE(bp.has_value());
  std::vector<std::int64_t> w{1, 1};
  std::vector<int> forced{0, 1};
  EXPECT_FALSE(max_weight_independent_superset(g, *bp, w, forced).has_value());
}

TEST(MwisSuperset, ContainsForcedExcludesNeighbors) {
  // Path 0-1-2-3; force vertex 1. Its neighbors 0 and 2 must be excluded;
  // vertex 3 remains free and should be included.
  const Graph g = path_graph(4);
  const auto bp = bipartition(g);
  ASSERT_TRUE(bp.has_value());
  std::vector<std::int64_t> w{100, 1, 100, 4};
  std::vector<int> forced{1};
  const auto r = max_weight_independent_superset(g, *bp, w, forced);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->in_set[1]);
  EXPECT_FALSE(r->in_set[0]);
  EXPECT_FALSE(r->in_set[2]);
  EXPECT_TRUE(r->in_set[3]);
  EXPECT_EQ(r->weight, 5);
}

TEST(MwisSuperset, EmptyForcedEqualsPlainMwis) {
  Rng rng(9);
  const Graph g = random_bipartite_edges(5, 5, 12, rng);
  std::vector<std::int64_t> w(10);
  for (auto& x : w) x = rng.uniform_int(1, 9);
  const auto bp = bipartition(g);
  ASSERT_TRUE(bp.has_value());
  const auto plain = max_weight_independent_set(g, *bp, w);
  const auto sup = max_weight_independent_superset(g, *bp, w, {});
  ASSERT_TRUE(sup.has_value());
  EXPECT_EQ(sup->weight, plain.weight);
}

// Optimality of the constrained variant against a constrained brute force.
TEST(MwisSuperset, OptimalAgainstConstrainedBruteForce) {
  Rng rng(606);
  for (int iter = 0; iter < 40; ++iter) {
    const int a = 1 + static_cast<int>(rng.uniform_int(0, 4));
    const int b = 1 + static_cast<int>(rng.uniform_int(0, 4));
    const int n = a + b;
    const std::int64_t max_m = static_cast<std::int64_t>(a) * b;
    const Graph g = random_bipartite_edges(a, b, rng.uniform_int(0, max_m), rng);
    std::vector<std::int64_t> w(n);
    for (auto& x : w) x = rng.uniform_int(0, 9);

    // Random forced set (possibly dependent).
    std::vector<int> forced;
    for (int v = 0; v < n; ++v) {
      if (rng.bernoulli(0.25)) forced.push_back(v);
    }

    const auto bp = bipartition(g);
    ASSERT_TRUE(bp.has_value());
    const auto fast = max_weight_independent_superset(g, *bp, w, forced);

    // Constrained brute force.
    std::int64_t best = -1;
    for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
      std::vector<std::uint8_t> bits(n, 0);
      std::int64_t weight = 0;
      for (int v = 0; v < n; ++v) {
        if (mask & (1u << v)) {
          bits[v] = 1;
          weight += w[v];
        }
      }
      bool has_forced = true;
      for (int v : forced) has_forced = has_forced && bits[v];
      if (has_forced && g.is_independent_mask(bits)) best = std::max(best, weight);
    }

    if (best == -1) {
      EXPECT_FALSE(fast.has_value());
    } else {
      ASSERT_TRUE(fast.has_value());
      EXPECT_EQ(fast->weight, best);
      for (int v : forced) EXPECT_TRUE(fast->in_set[v]);
      EXPECT_TRUE(g.is_independent_mask(fast->in_set));
    }
  }
}

}  // namespace
}  // namespace bisched

#include "graph/matching.hpp"

#include <gtest/gtest.h>

#include "random/generators.hpp"
#include "util/prng.hpp"

namespace bisched {
namespace {

MatchingResult match_of(const Graph& g) {
  const auto bp = bipartition(g);
  EXPECT_TRUE(bp.has_value());
  return maximum_matching(g, *bp);
}

void expect_valid_matching(const Graph& g, const MatchingResult& m) {
  int matched_pairs = 0;
  for (int v = 0; v < g.num_vertices(); ++v) {
    const int u = m.mate[v];
    if (u == -1) continue;
    EXPECT_EQ(m.mate[u], v) << "mate symmetry broken";
    EXPECT_TRUE(g.has_edge(u, v)) << "matched pair not an edge";
    if (u > v) ++matched_pairs;
  }
  EXPECT_EQ(matched_pairs, m.size);
}

TEST(Matching, CompleteBipartiteIsPartMinimum) {
  const Graph g = complete_bipartite(3, 5);
  const auto m = match_of(g);
  EXPECT_EQ(m.size, 3);
  expect_valid_matching(g, m);
}

TEST(Matching, CrownHasPerfectMatching) {
  const Graph g = crown(4);
  const auto m = match_of(g);
  EXPECT_EQ(m.size, 4);
  expect_valid_matching(g, m);
}

TEST(Matching, PathMatching) {
  EXPECT_EQ(match_of(path_graph(2)).size, 1);
  EXPECT_EQ(match_of(path_graph(3)).size, 1);
  EXPECT_EQ(match_of(path_graph(4)).size, 2);
  EXPECT_EQ(match_of(path_graph(7)).size, 3);
}

TEST(Matching, EmptyGraph) {
  const Graph g(5);
  const auto m = match_of(g);
  EXPECT_EQ(m.size, 0);
  for (int v = 0; v < 5; ++v) EXPECT_EQ(m.mate[v], -1);
}

TEST(Matching, AgreesWithBruteForceOnRandomGraphs) {
  Rng rng(2024);
  for (int iter = 0; iter < 60; ++iter) {
    const int a = 1 + static_cast<int>(rng.uniform_int(0, 5));
    const int b = 1 + static_cast<int>(rng.uniform_int(0, 5));
    const std::int64_t max_m = static_cast<std::int64_t>(a) * b;
    const Graph g = random_bipartite_edges(a, b, rng.uniform_int(0, max_m), rng);
    const auto m = match_of(g);
    expect_valid_matching(g, m);
    EXPECT_EQ(m.size, maximum_matching_size_brute(g)) << "a=" << a << " b=" << b;
  }
}

TEST(Konig, CoverCoversAllEdgesAndMatchesMu) {
  Rng rng(31337);
  for (int iter = 0; iter < 40; ++iter) {
    const int a = 1 + static_cast<int>(rng.uniform_int(0, 6));
    const int b = 1 + static_cast<int>(rng.uniform_int(0, 6));
    const std::int64_t max_m = static_cast<std::int64_t>(a) * b;
    const Graph g = random_bipartite_edges(a, b, rng.uniform_int(0, max_m), rng);
    const auto bp = bipartition(g);
    ASSERT_TRUE(bp.has_value());
    const auto m = maximum_matching(g, *bp);
    const auto cover = minimum_vertex_cover(g, *bp, m);

    int cover_size = 0;
    for (auto bit : cover) cover_size += bit;
    EXPECT_EQ(cover_size, m.size) << "König: |cover| must equal µ";

    for (int u = 0; u < g.num_vertices(); ++u) {
      for (int v : g.neighbors(u)) {
        EXPECT_TRUE(cover[u] || cover[v]) << "edge uncovered";
      }
    }
  }
}

TEST(Konig, IndependentSetIsComplementAndMaximum) {
  Rng rng(555);
  for (int iter = 0; iter < 40; ++iter) {
    const int a = 1 + static_cast<int>(rng.uniform_int(0, 6));
    const int b = 1 + static_cast<int>(rng.uniform_int(0, 6));
    const std::int64_t max_m = static_cast<std::int64_t>(a) * b;
    const Graph g = random_bipartite_edges(a, b, rng.uniform_int(0, max_m), rng);
    const auto bp = bipartition(g);
    ASSERT_TRUE(bp.has_value());
    const auto m = maximum_matching(g, *bp);
    const auto mis = maximum_independent_set_mask(g, *bp, m);

    EXPECT_TRUE(g.is_independent_mask(mis));
    int size = 0;
    for (auto bit : mis) size += bit;
    EXPECT_EQ(size, g.num_vertices() - m.size) << "α = |V| - µ violated";
  }
}

TEST(Matching, StarGraph) {
  // Star K_{1,5}: matching size 1 regardless of leaves.
  const Graph g = complete_bipartite(1, 5);
  EXPECT_EQ(match_of(g).size, 1);
}

}  // namespace
}  // namespace bisched

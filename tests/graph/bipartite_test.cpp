#include "graph/bipartite.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "random/generators.hpp"
#include "util/prng.hpp"

namespace bisched {
namespace {

TEST(Bipartition, PathIsBipartite) {
  const Graph g = path_graph(5);
  const auto bp = bipartition(g);
  ASSERT_TRUE(bp.has_value());
  EXPECT_EQ(bp->num_components, 1);
  for (int v = 0; v < 5; ++v) EXPECT_EQ(bp->side[v], v % 2);
}

TEST(Bipartition, OddCycleIsNot) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  EXPECT_FALSE(bipartition(g).has_value());
}

TEST(Bipartition, EvenCycleIs) {
  EXPECT_TRUE(bipartition(even_cycle(4)).has_value());
}

TEST(Bipartition, ComponentsOfForest) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  // 4 and 5 isolated
  const auto bp = bipartition(g);
  ASSERT_TRUE(bp.has_value());
  EXPECT_EQ(bp->num_components, 4);
  EXPECT_EQ(bp->component[0], bp->component[1]);
  EXPECT_NE(bp->component[0], bp->component[2]);
  EXPECT_EQ(bp->component_vertices[bp->component[2]], (std::vector<int>{2, 3}));
}

TEST(ConnectedComponents, WorksOnNonBipartite) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);  // triangle
  g.add_edge(3, 4);
  const Components c = connected_components(g);
  EXPECT_EQ(c.num_components, 2);
  EXPECT_EQ(c.component_vertices[0], (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(c.component_vertices[1], (std::vector<int>{3, 4}));
}

TEST(InequitableColoring, PutsHeavySideFirstPerComponent) {
  // Component 1: star with center 0 and leaves 1..3 (leaves heavier side).
  // Component 2: single edge 4-5 with vertex 5 heavier.
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  g.add_edge(4, 5);
  const std::vector<std::int64_t> w{1, 1, 1, 1, 1, 10};
  const auto tc = inequitable_two_coloring(g, w);
  ASSERT_TRUE(tc.has_value());
  // Leaves of the star in V'_1, center in V'_2.
  EXPECT_EQ(tc->color[1], 0);
  EXPECT_EQ(tc->color[2], 0);
  EXPECT_EQ(tc->color[3], 0);
  EXPECT_EQ(tc->color[0], 1);
  // Heavy endpoint 5 in V'_1.
  EXPECT_EQ(tc->color[5], 0);
  EXPECT_EQ(tc->color[4], 1);
  EXPECT_EQ(tc->weight[0], 13);
  EXPECT_EQ(tc->weight[1], 2);
  EXPECT_EQ(tc->size[0], 4);
  EXPECT_EQ(tc->size[1], 2);
}

TEST(InequitableColoring, UnitWeightsOverloadCountsCardinality) {
  const Graph g = complete_bipartite(2, 5);
  const auto tc = inequitable_two_coloring(g);
  ASSERT_TRUE(tc.has_value());
  EXPECT_EQ(tc->size[0], 5);
  EXPECT_EQ(tc->size[1], 2);
}

TEST(InequitableColoring, NulloptForOddCycle) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  std::vector<std::int64_t> w{1, 1, 1};
  EXPECT_FALSE(inequitable_two_coloring(g, w).has_value());
}

// Property: the inequitable coloring is optimal among all proper 2-colorings.
// Verified against exhaustive orientation enumeration on random forests.
TEST(InequitableColoring, OptimalAgainstExhaustiveOrientations) {
  Rng rng(1234);
  for (int iter = 0; iter < 50; ++iter) {
    const int n = 2 + static_cast<int>(rng.uniform_int(0, 10));
    const Graph g = random_tree(n, rng);
    std::vector<std::int64_t> w(n);
    for (auto& x : w) x = rng.uniform_int(0, 20);

    const auto tc = inequitable_two_coloring(g, w);
    ASSERT_TRUE(tc.has_value());

    const auto bp = bipartition(g);
    ASSERT_TRUE(bp.has_value());
    // A tree is one component: best V'_1 weight = max(side0, side1).
    std::int64_t side_weight[2] = {0, 0};
    for (int v = 0; v < n; ++v) side_weight[bp->side[v]] += w[v];
    EXPECT_EQ(tc->weight[0], std::max(side_weight[0], side_weight[1]));
    EXPECT_EQ(tc->weight[0] + tc->weight[1], side_weight[0] + side_weight[1]);
    EXPECT_GE(tc->weight[0], tc->weight[1]);
  }
}

// Property: V'_1 is always at least as heavy as V'_2 and the coloring is
// proper, on random multi-component bipartite graphs.
TEST(InequitableColoring, ProperAndHeavyOnRandomBipartite) {
  Rng rng(77);
  for (int iter = 0; iter < 30; ++iter) {
    const int a = 1 + static_cast<int>(rng.uniform_int(0, 8));
    const int b = 1 + static_cast<int>(rng.uniform_int(0, 8));
    const std::int64_t max_m = static_cast<std::int64_t>(a) * b;
    const Graph g = random_bipartite_edges(a, b, rng.uniform_int(0, max_m / 2), rng);
    std::vector<std::int64_t> w(a + b);
    for (auto& x : w) x = rng.uniform_int(1, 9);
    const auto tc = inequitable_two_coloring(g, w);
    ASSERT_TRUE(tc.has_value());
    EXPECT_GE(tc->weight[0], tc->weight[1]);
    // Proper: no edge within a class.
    for (int u = 0; u < g.num_vertices(); ++u) {
      for (int v : g.neighbors(u)) {
        EXPECT_NE(tc->color[u], tc->color[v]);
      }
    }
  }
}

TEST(ArbitraryColoring, ProperButNotNecessarilyHeavy) {
  // Single edge with the heavy vertex on side 1: arbitrary coloring keeps the
  // BFS orientation (vertex 0 -> color 0), so V'_1 is lighter here.
  Graph g(2);
  g.add_edge(0, 1);
  const std::vector<std::int64_t> w{1, 10};
  const auto tc = arbitrary_two_coloring(g, w);
  ASSERT_TRUE(tc.has_value());
  EXPECT_EQ(tc->color[0], 0);
  EXPECT_EQ(tc->color[1], 1);
  EXPECT_EQ(tc->weight[0], 1);
  EXPECT_EQ(tc->weight[1], 10);
}

}  // namespace
}  // namespace bisched

#include "graph/maxflow.hpp"

#include <gtest/gtest.h>

#include "graph/matching.hpp"
#include "random/generators.hpp"
#include "util/prng.hpp"

namespace bisched {
namespace {

TEST(Dinic, SingleEdge) {
  Dinic d(2);
  d.add_edge(0, 1, 7);
  EXPECT_EQ(d.max_flow(0, 1), 7);
}

TEST(Dinic, SeriesBottleneck) {
  Dinic d(3);
  d.add_edge(0, 1, 10);
  d.add_edge(1, 2, 4);
  EXPECT_EQ(d.max_flow(0, 2), 4);
}

TEST(Dinic, ParallelPathsSum) {
  Dinic d(4);
  d.add_edge(0, 1, 3);
  d.add_edge(1, 3, 3);
  d.add_edge(0, 2, 5);
  d.add_edge(2, 3, 5);
  EXPECT_EQ(d.max_flow(0, 3), 8);
}

TEST(Dinic, ClassicDiamondWithCrossEdge) {
  // The textbook example where augmenting must route through the cross edge.
  Dinic d(4);
  d.add_edge(0, 1, 1000);
  d.add_edge(0, 2, 1000);
  d.add_edge(1, 2, 1);
  d.add_edge(1, 3, 1000);
  d.add_edge(2, 3, 1000);
  EXPECT_EQ(d.max_flow(0, 3), 2000);
}

TEST(Dinic, DisconnectedSinkGivesZero) {
  Dinic d(3);
  d.add_edge(0, 1, 5);
  EXPECT_EQ(d.max_flow(0, 2), 0);
}

TEST(Dinic, FlowOnEdgeReporting) {
  Dinic d(3);
  const int e1 = d.add_edge(0, 1, 10);
  const int e2 = d.add_edge(1, 2, 4);
  d.max_flow(0, 2);
  EXPECT_EQ(d.flow_on(e1), 4);
  EXPECT_EQ(d.flow_on(e2), 4);
}

TEST(Dinic, MinCutSeparatesAndMatchesFlowValue) {
  Rng rng(99);
  for (int iter = 0; iter < 30; ++iter) {
    const int n = 2 + static_cast<int>(rng.uniform_int(0, 6));
    Dinic d(n);
    struct E {
      int u, v, id;
      std::int64_t cap;
    };
    std::vector<E> edges;
    for (int u = 0; u < n; ++u) {
      for (int v = 0; v < n; ++v) {
        if (u == v) continue;
        if (rng.bernoulli(0.4)) {
          const std::int64_t cap = rng.uniform_int(0, 10);
          edges.push_back({u, v, d.add_edge(u, v, cap), cap});
        }
      }
    }
    const std::int64_t flow = d.max_flow(0, n - 1);
    const auto side = d.min_cut_source_side(0);
    EXPECT_TRUE(side[0]);
    EXPECT_FALSE(side[n - 1]);
    // Capacity of the cut (original caps of edges source-side -> sink-side)
    // must equal the max flow (max-flow min-cut theorem).
    std::int64_t cut = 0;
    for (const auto& e : edges) {
      if (side[e.u] && !side[e.v]) cut += e.cap;
    }
    EXPECT_EQ(cut, flow);
  }
}

TEST(Dinic, ReproducesBipartiteMatchingSizes) {
  Rng rng(2718);
  for (int iter = 0; iter < 30; ++iter) {
    const int a = 1 + static_cast<int>(rng.uniform_int(0, 6));
    const int b = 1 + static_cast<int>(rng.uniform_int(0, 6));
    const std::int64_t max_m = static_cast<std::int64_t>(a) * b;
    const Graph g = random_bipartite_edges(a, b, rng.uniform_int(0, max_m), rng);

    Dinic d(a + b + 2);
    const int source = a + b;
    const int sink = a + b + 1;
    for (int u = 0; u < a; ++u) d.add_edge(source, u, 1);
    for (int v = 0; v < b; ++v) d.add_edge(a + v, sink, 1);
    for (int u = 0; u < a; ++u) {
      for (int v : g.neighbors(u)) d.add_edge(u, v, 1);
    }
    const auto bp = bipartition(g);
    ASSERT_TRUE(bp.has_value());
    EXPECT_EQ(d.max_flow(source, sink), maximum_matching(g, *bp).size);
  }
}

TEST(DinicDeath, SourceEqualsSink) {
  Dinic d(2);
  EXPECT_DEATH(d.max_flow(1, 1), "source equals sink");
}

}  // namespace
}  // namespace bisched

#include "graph/maxflow.hpp"

#include <gtest/gtest.h>

#include "graph/matching.hpp"
#include "random/generators.hpp"
#include "reference_kernels.hpp"
#include "util/prng.hpp"

namespace bisched {
namespace {

TEST(Dinic, SingleEdge) {
  Dinic d(2);
  d.add_edge(0, 1, 7);
  EXPECT_EQ(d.max_flow(0, 1), 7);
}

TEST(Dinic, SeriesBottleneck) {
  Dinic d(3);
  d.add_edge(0, 1, 10);
  d.add_edge(1, 2, 4);
  EXPECT_EQ(d.max_flow(0, 2), 4);
}

TEST(Dinic, ParallelPathsSum) {
  Dinic d(4);
  d.add_edge(0, 1, 3);
  d.add_edge(1, 3, 3);
  d.add_edge(0, 2, 5);
  d.add_edge(2, 3, 5);
  EXPECT_EQ(d.max_flow(0, 3), 8);
}

TEST(Dinic, ClassicDiamondWithCrossEdge) {
  // The textbook example where augmenting must route through the cross edge.
  Dinic d(4);
  d.add_edge(0, 1, 1000);
  d.add_edge(0, 2, 1000);
  d.add_edge(1, 2, 1);
  d.add_edge(1, 3, 1000);
  d.add_edge(2, 3, 1000);
  EXPECT_EQ(d.max_flow(0, 3), 2000);
}

TEST(Dinic, DisconnectedSinkGivesZero) {
  Dinic d(3);
  d.add_edge(0, 1, 5);
  EXPECT_EQ(d.max_flow(0, 2), 0);
}

TEST(Dinic, FlowOnEdgeReporting) {
  Dinic d(3);
  const int e1 = d.add_edge(0, 1, 10);
  const int e2 = d.add_edge(1, 2, 4);
  d.max_flow(0, 2);
  EXPECT_EQ(d.flow_on(e1), 4);
  EXPECT_EQ(d.flow_on(e2), 4);
}

TEST(Dinic, MinCutSeparatesAndMatchesFlowValue) {
  Rng rng(99);
  for (int iter = 0; iter < 30; ++iter) {
    const int n = 2 + static_cast<int>(rng.uniform_int(0, 6));
    Dinic d(n);
    struct E {
      int u, v, id;
      std::int64_t cap;
    };
    std::vector<E> edges;
    for (int u = 0; u < n; ++u) {
      for (int v = 0; v < n; ++v) {
        if (u == v) continue;
        if (rng.bernoulli(0.4)) {
          const std::int64_t cap = rng.uniform_int(0, 10);
          edges.push_back({u, v, d.add_edge(u, v, cap), cap});
        }
      }
    }
    const std::int64_t flow = d.max_flow(0, n - 1);
    const auto side = d.min_cut_source_side(0);
    EXPECT_TRUE(side[0]);
    EXPECT_FALSE(side[n - 1]);
    // Capacity of the cut (original caps of edges source-side -> sink-side)
    // must equal the max flow (max-flow min-cut theorem).
    std::int64_t cut = 0;
    for (const auto& e : edges) {
      if (side[e.u] && !side[e.v]) cut += e.cap;
    }
    EXPECT_EQ(cut, flow);
  }
}

TEST(Dinic, ReproducesBipartiteMatchingSizes) {
  Rng rng(2718);
  for (int iter = 0; iter < 30; ++iter) {
    const int a = 1 + static_cast<int>(rng.uniform_int(0, 6));
    const int b = 1 + static_cast<int>(rng.uniform_int(0, 6));
    const std::int64_t max_m = static_cast<std::int64_t>(a) * b;
    const Graph g = random_bipartite_edges(a, b, rng.uniform_int(0, max_m), rng);

    Dinic d(a + b + 2);
    const int source = a + b;
    const int sink = a + b + 1;
    for (int u = 0; u < a; ++u) d.add_edge(source, u, 1);
    for (int v = 0; v < b; ++v) d.add_edge(a + v, sink, 1);
    for (int u = 0; u < a; ++u) {
      for (int v : g.neighbors(u)) d.add_edge(u, v, 1);
    }
    const auto bp = bipartition(g);
    ASSERT_TRUE(bp.has_value());
    EXPECT_EQ(d.max_flow(source, sink), maximum_matching(g, *bp).size);
  }
}

TEST(DinicDeath, SourceEqualsSink) {
  Dinic d(2);
  EXPECT_DEATH(d.max_flow(1, 1), "source equals sink");
}

// The CSR rewrite freezes each node's edges in reverse insertion order —
// exactly the old intrusive-list traversal — so not just the (unique) flow
// value but the whole residual graph must match the seed implementation
// preserved in tests/reference_kernels.hpp: per-edge flows and the min-cut
// source side are compared bit for bit on random digraphs.
TEST(DinicDifferential, CsrMatchesSeedResidualsBitForBit) {
  Rng rng(777);
  for (int iter = 0; iter < 60; ++iter) {
    const int n = 2 + static_cast<int>(rng.uniform_int(0, 10));
    Dinic csr(n);
    reference::Dinic seed(n);
    std::vector<int> ids;
    for (int u = 0; u < n; ++u) {
      for (int v = 0; v < n; ++v) {
        if (u == v) continue;
        if (rng.bernoulli(0.35)) {
          const std::int64_t cap =
              rng.bernoulli(0.15) ? Dinic::kCapInfinity : rng.uniform_int(0, 12);
          const int id = csr.add_edge(u, v, cap);
          ASSERT_EQ(id, seed.add_edge(u, v, cap));
          ids.push_back(id);
        }
      }
    }
    const int s = 0;
    const int t = n - 1;
    EXPECT_EQ(csr.max_flow(s, t), seed.max_flow(s, t)) << "iter " << iter;
    for (const int id : ids) {
      EXPECT_EQ(csr.flow_on(id), seed.flow_on(id)) << "iter " << iter << " edge " << id;
    }
    EXPECT_EQ(csr.min_cut_source_side(s), seed.min_cut_source_side(s))
        << "iter " << iter;
  }
}

// The MWIS shape Algorithm 1 actually min-cuts on: weighted bipartite sides
// with infinite middle edges.
TEST(DinicDifferential, CsrMatchesSeedOnMwisNetworks) {
  Rng rng(778);
  for (int iter = 0; iter < 30; ++iter) {
    const int a = 1 + static_cast<int>(rng.uniform_int(0, 8));
    const int b = 1 + static_cast<int>(rng.uniform_int(0, 8));
    const Graph g = random_bipartite_edges(
        a, b, rng.uniform_int(0, static_cast<std::int64_t>(a) * b), rng);
    const int n = a + b;
    Dinic csr(n + 2);
    reference::Dinic seed(n + 2);
    const int source = n;
    const int sink = n + 1;
    const auto add_both = [&](int u, int v, std::int64_t cap) {
      ASSERT_EQ(csr.add_edge(u, v, cap), seed.add_edge(u, v, cap));
    };
    for (int v = 0; v < n; ++v) {
      if (v < a) {
        add_both(source, v, rng.uniform_int(0, 20));
        for (int u : g.neighbors(v)) add_both(v, u, Dinic::kCapInfinity);
      } else {
        add_both(v, sink, rng.uniform_int(0, 20));
      }
    }
    EXPECT_EQ(csr.max_flow(source, sink), seed.max_flow(source, sink)) << "iter " << iter;
    EXPECT_EQ(csr.min_cut_source_side(source), seed.min_cut_source_side(source))
        << "iter " << iter;
  }
}

TEST(DinicDeath, AddEdgeAfterMaxFlowIsRejected) {
  Dinic d(3);
  d.add_edge(0, 1, 2);
  d.add_edge(1, 2, 2);
  d.max_flow(0, 2);
  EXPECT_DEATH(d.add_edge(0, 2, 1), "add_edge after max_flow");
}

}  // namespace
}  // namespace bisched

#include "graph/coloring.hpp"

#include <gtest/gtest.h>

#include "random/generators.hpp"
#include "util/prng.hpp"

namespace bisched {
namespace {

TEST(GreedyColoring, ProperOnRandomGraphs) {
  Rng rng(12);
  for (int iter = 0; iter < 20; ++iter) {
    const int a = 1 + static_cast<int>(rng.uniform_int(0, 6));
    const int b = 1 + static_cast<int>(rng.uniform_int(0, 6));
    const std::int64_t max_m = static_cast<std::int64_t>(a) * b;
    const Graph g = random_bipartite_edges(a, b, rng.uniform_int(0, max_m), rng);
    const auto colors = greedy_coloring(g);
    EXPECT_TRUE(is_proper_coloring(g, colors));
    EXPECT_LE(num_colors_used(colors), 2);  // greedy is optimal-ish on bipartite order
  }
}

TEST(GreedyColoring, RespectsCustomOrder) {
  const Graph g = path_graph(3);
  std::vector<int> order{1, 0, 2};
  const auto colors = greedy_coloring(g, order);
  EXPECT_TRUE(is_proper_coloring(g, colors));
  EXPECT_EQ(colors[1], 0);  // first in order gets color 0
}

TEST(IsProperColoring, DetectsViolations) {
  Graph g(2);
  g.add_edge(0, 1);
  EXPECT_FALSE(is_proper_coloring(g, std::vector<int>{0, 0}));
  EXPECT_TRUE(is_proper_coloring(g, std::vector<int>{0, 1}));
  EXPECT_TRUE(is_proper_coloring(g, std::vector<int>{-1, -1}));  // uncolored never conflicts
  EXPECT_TRUE(is_proper_coloring(g, std::vector<int>{0, -1}));
}

TEST(KColoring, BipartiteNeedsTwo) {
  const Graph g = even_cycle(5);
  std::vector<int> pre(g.num_vertices(), -1);
  EXPECT_TRUE(k_coloring_extend(g, 2, pre).has_value());
  EXPECT_FALSE(k_coloring_extend(g, 1, pre).has_value());
}

TEST(KColoring, OddCycleNeedsThree) {
  Graph g(5);
  for (int i = 0; i < 5; ++i) g.add_edge(i, (i + 1) % 5);
  std::vector<int> pre(5, -1);
  EXPECT_FALSE(k_coloring_extend(g, 2, pre).has_value());
  const auto c3 = k_coloring_extend(g, 3, pre);
  ASSERT_TRUE(c3.has_value());
  EXPECT_TRUE(is_proper_coloring(g, *c3));
}

TEST(KColoring, CompleteGraphNeedsN) {
  Graph k4(4);
  for (int u = 0; u < 4; ++u) {
    for (int v = u + 1; v < 4; ++v) k4.add_edge(u, v);
  }
  std::vector<int> pre(4, -1);
  EXPECT_FALSE(k_coloring_extend(k4, 3, pre).has_value());
  EXPECT_TRUE(k_coloring_extend(k4, 4, pre).has_value());
}

TEST(KColoring, HonorsPrecoloring) {
  const Graph g = path_graph(3);
  std::vector<int> pre{2, -1, 2};
  const auto c = k_coloring_extend(g, 3, pre);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ((*c)[0], 2);
  EXPECT_EQ((*c)[2], 2);
  EXPECT_NE((*c)[1], 2);
}

TEST(KColoring, DirectPrecolorConflictInfeasible) {
  Graph g(2);
  g.add_edge(0, 1);
  std::vector<int> pre{1, 1};
  EXPECT_FALSE(k_coloring_extend(g, 3, pre).has_value());
}

TEST(KColoring, PrecoloringExtensionCanBeInfeasibleOnBipartite) {
  // 1-PrExt flavor: u adjacent to three differently-precolored vertices has
  // no color left among k=3.
  Graph g(4);
  g.add_edge(3, 0);
  g.add_edge(3, 1);
  g.add_edge(3, 2);
  std::vector<int> pre{0, 1, 2, -1};
  EXPECT_FALSE(k_coloring_extend(g, 3, pre).has_value());
  EXPECT_TRUE(k_coloring_extend(g, 4, pre).has_value());
}

TEST(KColoring, PlantedColoringAlwaysExtendable) {
  Rng rng(88);
  for (int iter = 0; iter < 20; ++iter) {
    std::vector<int> planted;
    const Graph g =
        random_bipartite_planted_coloring(12, 3, 0.5, rng, &planted);
    // Precolor three random vertices with their planted colors.
    std::vector<int> pre(12, -1);
    for (int j = 0; j < 3; ++j) {
      const int v = static_cast<int>(rng.uniform_int(0, 11));
      pre[v] = planted[v];
    }
    const auto c = k_coloring_extend(g, 3, pre);
    ASSERT_TRUE(c.has_value());
    EXPECT_TRUE(is_proper_coloring(g, *c));
  }
}

TEST(KColoring, NodeLimitSetsAbortedFlag) {
  // A graph requiring search: random 3-colorable-ish instance with a
  // one-node budget must abort, not report infeasible.
  Rng rng(3);
  std::vector<int> planted;
  const Graph g = random_bipartite_planted_coloring(30, 3, 0.4, rng, &planted);
  std::vector<int> pre(30, -1);
  bool aborted = false;
  const auto c = k_coloring_extend(g, 3, pre, /*max_nodes=*/1, &aborted);
  if (!c.has_value()) {
    EXPECT_TRUE(aborted);
  }
}

TEST(KColoring, EmptyGraphTrivial) {
  Graph g(3);
  std::vector<int> pre(3, -1);
  const auto c = k_coloring_extend(g, 1, pre);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(*c, (std::vector<int>{0, 0, 0}));
}

}  // namespace
}  // namespace bisched

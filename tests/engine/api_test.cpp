// Engine API v1 tests: the request/response codec (round trip, strict
// decoding, option layering) and the golden wire-schema pin — the checked-in
// tests/engine/golden/solve_response_v1.json is the contract every response
// producer (CLI solve --json, batch rows, serve sessions) speaks; accidental
// field drift fails here before any client sees it.
#include "engine/api.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "engine/registry.hpp"
#include "io/jsonl.hpp"
#include "testing_util.hpp"
#include "util/prng.hpp"

namespace bisched {
namespace {

using engine::SolveRequest;
using engine::SolveResponse;

TEST(ApiRequestCodec, RoundTripsEveryField) {
  SolveRequest req;
  req.id = "r-42";
  req.path = "corpus/q.inst";
  req.alg = "q2exact";
  req.has_eps = true;
  req.eps = 0.25;
  req.has_run_all = true;
  req.run_all = true;
  req.has_budget_ms = true;
  req.budget_ms = 125;

  const std::string line = engine::encode_request_json(req);
  EXPECT_NE(line.find("\"v\": 1"), std::string::npos);

  std::string error;
  const auto decoded = engine::decode_request_json(line, &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(decoded->id, req.id);
  EXPECT_EQ(decoded->path, req.path);
  EXPECT_EQ(decoded->alg, req.alg);
  ASSERT_TRUE(decoded->has_eps);
  EXPECT_DOUBLE_EQ(decoded->eps, 0.25);
  ASSERT_TRUE(decoded->has_run_all);
  EXPECT_TRUE(decoded->run_all);
  ASSERT_TRUE(decoded->has_budget_ms);
  EXPECT_DOUBLE_EQ(decoded->budget_ms, 125);

  // Inline-instance form round-trips too (newlines escaped through the
  // shared json_quote path).
  SolveRequest inline_req;
  inline_req.inline_text = "bisched uniform v1\njobs 1\n";
  inline_req.has_inline_text = true;
  const auto inline_decoded =
      engine::decode_request_json(engine::encode_request_json(inline_req), &error);
  ASSERT_TRUE(inline_decoded.has_value()) << error;
  EXPECT_TRUE(inline_decoded->has_inline_text);
  EXPECT_EQ(inline_decoded->inline_text, inline_req.inline_text);
}

TEST(ApiRequestCodec, VersionIsOptionalButChecked) {
  std::string error;
  // Absent v = v1 (today's serve clients never sent one).
  EXPECT_TRUE(engine::decode_request_json("{\"path\": \"a\"}", &error).has_value())
      << error;
  // A wrong version is rejected up front, not half-interpreted.
  EXPECT_FALSE(engine::decode_request_json("{\"v\": 2, \"path\": \"a\"}", &error));
  EXPECT_NE(error.find("unsupported api version"), std::string::npos);
}

TEST(ApiRequestCodec, RejectsMalformedFrames) {
  std::string error;
  // Unknown keys are rejected, not skipped: a typo'd "ep" must not solve
  // with defaults and report success.
  EXPECT_FALSE(engine::decode_request_json("{\"path\": \"a\", \"ep\": 0.1}", &error));
  EXPECT_NE(error.find("unknown key \"ep\""), std::string::npos);

  EXPECT_FALSE(engine::decode_request_json("{\"path\": \"a\", \"eps\": \"x\"}", &error));
  EXPECT_NE(error.find("eps is not a number"), std::string::npos);

  EXPECT_FALSE(engine::decode_request_json("{\"path\": \"a\", \"all\": 1}", &error));
  EXPECT_NE(error.find("all must be true or false"), std::string::npos);

  // Exactly one source.
  EXPECT_FALSE(engine::decode_request_json("{\"id\": \"x\"}", &error));
  EXPECT_NE(error.find("exactly one of"), std::string::npos);
  EXPECT_FALSE(engine::decode_request_json(
      "{\"path\": \"a\", \"instance\": \"b\"}", &error));
  EXPECT_NE(error.find("exactly one of"), std::string::npos);
}

TEST(ApiOptions, RequestOverridesLayerOverDefaults) {
  engine::SolveOptions defaults;
  defaults.eps = 0.1;
  defaults.run_all = false;
  defaults.budget_ms = 0;

  SolveRequest untouched;
  const auto same = engine::resolved_options(untouched, defaults);
  EXPECT_DOUBLE_EQ(same.eps, 0.1);
  EXPECT_FALSE(same.run_all);

  SolveRequest overriding;
  overriding.has_eps = true;
  overriding.eps = 0.5;
  overriding.has_run_all = true;
  overriding.run_all = true;
  overriding.has_budget_ms = true;
  overriding.budget_ms = 20;
  const auto resolved = engine::resolved_options(overriding, defaults);
  EXPECT_DOUBLE_EQ(resolved.eps, 0.5);
  EXPECT_TRUE(resolved.run_all);
  EXPECT_DOUBLE_EQ(resolved.budget_ms, 20);
}

SolveResponse golden_sample() {
  SolveResponse r;
  r.id = "req-1";
  r.seq = 7;
  r.file = "corpus/a.inst";
  r.ok = true;
  r.model = "uniform";
  r.jobs = 5;
  r.machines = 2;
  r.instance_hash = "00000000deadbeef";
  r.cache_tier = engine::CacheTier::kMemory;
  r.result_cache_used = true;
  r.result_tier = engine::CacheTier::kMiss;
  r.solver = "q2exact";
  r.guarantee = "exact (Thm 4 DP)";
  r.makespan = "7/2";
  r.makespan_value = 3.5;
  r.wall_ms = 0;
  r.elapsed_ms = 0;
  // The telemetry members, pinned deterministically: a fixed trace id and a
  // hand-built span tree matching run_request's taxonomy, rendered with
  // stable timing (every ms = 0) so the golden is byte-reproducible.
  r.trace_id = "t-00000000-1";
  auto trace = std::make_shared<engine::telemetry::Trace>("t-00000000-1");
  engine::telemetry::TraceSpan& root = trace->root();
  root.child("probe")->set_detail("hit-memory");
  root.child("result")->set_detail("miss");
  engine::telemetry::TraceSpan* solve = root.child("solve");
  solve->set_detail("q2exact");
  solve->child("q2exact");
  root.child("store");
  r.trace = std::move(trace);
  r.show_spans = true;
  r.stable_timing = true;
  return r;
}

TEST(ApiWireSchema, ResponseMatchesTheCheckedInGolden) {
  // Field names AND values, compared order-insensitively through the same
  // flat-JSON parser serve uses — so the pin is on the schema, not on
  // incidental member ordering.
  std::ifstream golden_file(std::string(BISCHED_GOLDEN_DIR) +
                            "/solve_response_v1.json");
  ASSERT_TRUE(golden_file.is_open())
      << "golden file missing: " << BISCHED_GOLDEN_DIR << "/solve_response_v1.json";
  std::string golden_line;
  ASSERT_TRUE(std::getline(golden_file, golden_line));

  std::string error;
  const auto golden = parse_flat_json_object(golden_line, &error);
  ASSERT_TRUE(golden.has_value()) << error;
  std::string encoded = engine::encode_response_json(golden_sample());
  ASSERT_FALSE(encoded.empty());
  ASSERT_EQ(encoded.back(), '\n');  // one JSON Lines object
  encoded.pop_back();
  const auto actual = parse_flat_json_object(encoded, &error);
  ASSERT_TRUE(actual.has_value()) << error;

  // Key-set drift gets its own readable failure before the full comparison.
  for (const auto& [key, value] : *golden) {
    EXPECT_TRUE(actual->count(key) == 1) << "response lost v1 field \"" << key << "\"";
  }
  for (const auto& [key, value] : *actual) {
    EXPECT_TRUE(golden->count(key) == 1)
        << "response grew field \"" << key
        << "\" — wire growth must be a deliberate, versioned change "
           "(update the golden + docs/api.md)";
  }
  EXPECT_EQ(*actual, *golden);
}

TEST(ApiWireSchema, BatchRowsOmitTheIdMember) {
  SolveResponse row = golden_sample();
  row.id.clear();
  const std::string line = engine::encode_response_json(row);
  EXPECT_EQ(line.find("\"id\""), std::string::npos);
  EXPECT_NE(line.find("\"v\": 1"), std::string::npos);
}

TEST(ApiExecution, RunRequestResolvesEverySourceForm) {
  Rng rng(51);
  const auto inst = testing::random_uniform_instance(4, 4, 2, 3, 3, rng);
  std::ostringstream text;
  write_instance(text, inst);

  const auto& registry = engine::SolverRegistry::builtin();
  engine::WarmState warm;

  // Inline text source.
  SolveRequest by_text;
  by_text.inline_text = text.str();
  by_text.has_inline_text = true;
  by_text.id = "t";
  const auto from_text = engine::run_request(registry, warm, by_text, "auto", {});
  ASSERT_TRUE(from_text.ok) << from_text.error;
  EXPECT_EQ(from_text.id, "t");

  // Pre-parsed source (the serve `instance` frame path) — same answer, and
  // the SolveResult out-param carries the schedule.
  auto parsed = std::make_shared<ParsedInstance>();
  std::istringstream in(text.str());
  *parsed = parse_instance(in);
  SolveRequest by_parsed;
  by_parsed.parsed = parsed;
  engine::SolveResult full;
  const auto from_parsed =
      engine::run_request(registry, warm, by_parsed, "auto", {}, &full);
  ASSERT_TRUE(from_parsed.ok) << from_parsed.error;
  EXPECT_EQ(from_parsed.makespan, from_text.makespan);
  EXPECT_EQ(from_parsed.solver, from_text.solver);
  EXPECT_FALSE(full.schedule.machine_of.empty());
  // Same content solved twice through one warm state: the result cache
  // served the repeat (memory tier — no store attached here).
  EXPECT_TRUE(from_parsed.result_cache_used);
  EXPECT_EQ(from_parsed.result_tier, engine::CacheTier::kMemory);

  // Portfolio-only options that cannot take effect are errors at the API
  // boundary, not silently-ignored successes — the same rule the CLI
  // enforces on its flags, now covering wire requests too.
  SolveRequest all_named;
  all_named.inline_text = text.str();
  all_named.has_inline_text = true;
  all_named.alg = "q2exact";
  all_named.has_run_all = true;
  all_named.run_all = true;
  const auto all_err = engine::run_request(registry, warm, all_named, "auto", {});
  EXPECT_FALSE(all_err.ok);
  EXPECT_NE(all_err.error.find("\"all\" requires alg \"auto\""), std::string::npos);
  SolveRequest budget_only;
  budget_only.inline_text = text.str();
  budget_only.has_inline_text = true;
  budget_only.has_budget_ms = true;
  budget_only.budget_ms = 50;
  const auto budget_err = engine::run_request(registry, warm, budget_only, "auto", {});
  EXPECT_FALSE(budget_err.ok);
  EXPECT_NE(budget_err.error.find("\"budget_ms\" requires \"all\""), std::string::npos);

  // Missing file and missing source both yield error responses, not crashes.
  SolveRequest missing;
  missing.path = "/nonexistent/x.inst";
  EXPECT_EQ(engine::run_request(registry, warm, missing, "auto", {}).error,
            "cannot open file");
  SolveRequest empty;
  EXPECT_NE(engine::run_request(registry, warm, empty, "auto", {}).error.find(
                "no instance source"),
            std::string::npos);
}

}  // namespace
}  // namespace bisched

#include "engine/registry.hpp"

#include <gtest/gtest.h>

#include "engine/portfolio.hpp"

#include <algorithm>
#include <set>

#include "random/generators.hpp"
#include "sched/instance.hpp"
#include "testing_util.hpp"
#include "util/prng.hpp"

namespace bisched {
namespace {

using engine::Guarantee;
using engine::InstanceProfile;
using engine::SolverRegistry;

// The algorithm names the CLI advertises (usage text and `list-algs` both
// derive from the registry, so this list is the single drift check: a solver
// renamed, dropped, or added without updating the CLI-facing contract fails
// here).
const std::set<std::string> kAdvertised = {
    "alg1",      "alg2",    "alg2b",       "alg4",  "alg5",  "q2exact",
    "kab",       "q2dp",    "r2exact",     "exact", "split", "proportional",
    "greedy",    "q2r2exact", "q2unitfptas", "q2fptas",
};

TEST(Registry, EveryAdvertisedNameResolves) {
  const auto& reg = SolverRegistry::builtin();
  for (const auto& name : kAdvertised) {
    const auto* solver = reg.find(name);
    ASSERT_NE(solver, nullptr) << name;
    EXPECT_EQ(solver->name(), name);
    EXPECT_FALSE(solver->summary().empty()) << name;
    EXPECT_FALSE(solver->capabilities().guarantee_label.empty()) << name;
    EXPECT_NE(solver->capabilities().models, 0u) << name;
  }
}

TEST(Registry, NoUnadvertisedSolvers) {
  const auto names = SolverRegistry::builtin().names();
  EXPECT_EQ(std::set<std::string>(names.begin(), names.end()), kAdvertised);
}

TEST(Registry, CapabilityMetadataMatchesPaperPreconditions) {
  const auto& reg = SolverRegistry::builtin();

  const auto& q2exact = reg.find("q2exact")->capabilities();
  EXPECT_EQ(q2exact.models, engine::kModelUniform);
  EXPECT_EQ(q2exact.min_machines, 2);
  EXPECT_EQ(q2exact.max_machines, 2);
  EXPECT_TRUE(q2exact.unit_jobs_only);
  EXPECT_EQ(q2exact.graph, engine::kGraphBipartite);
  EXPECT_EQ(q2exact.guarantee, Guarantee::kExact);

  const auto& kab = reg.find("kab")->capabilities();
  EXPECT_TRUE(kab.unit_jobs_only);
  EXPECT_EQ(kab.graph, engine::kGraphCompleteBipartite);
  EXPECT_EQ(kab.guarantee, Guarantee::kExact);

  const auto& alg1 = reg.find("alg1")->capabilities();
  EXPECT_EQ(alg1.models, engine::kModelUniform);
  EXPECT_EQ(alg1.graph, engine::kGraphBipartite);
  EXPECT_EQ(alg1.guarantee, Guarantee::kSqrtApprox);
  EXPECT_FALSE(alg1.unit_jobs_only);

  const auto& alg4 = reg.find("alg4")->capabilities();
  EXPECT_EQ(alg4.models, engine::kModelUnrelated);
  EXPECT_EQ(alg4.min_machines, 2);
  EXPECT_EQ(alg4.max_machines, 2);
  EXPECT_EQ(alg4.guarantee, Guarantee::kTwoApprox);

  const auto& alg5 = reg.find("alg5")->capabilities();
  EXPECT_EQ(alg5.guarantee, Guarantee::kFptas);

  const auto& exact = reg.find("exact")->capabilities();
  EXPECT_EQ(exact.models, engine::kModelUniform | engine::kModelUnrelated);
  EXPECT_EQ(exact.max_jobs, 64);
  EXPECT_EQ(exact.graph, engine::kGraphAny);
  EXPECT_TRUE(exact.may_fail);

  const auto& greedy = reg.find("greedy")->capabilities();
  EXPECT_EQ(greedy.graph, engine::kGraphAny);
  EXPECT_TRUE(greedy.may_fail);

  // The Q2 companions registered from src/core's remaining entry points.
  const auto& q2r2 = reg.find("q2r2exact")->capabilities();
  EXPECT_EQ(q2r2.models, engine::kModelUniform);
  EXPECT_EQ(q2r2.min_machines, 2);
  EXPECT_EQ(q2r2.max_machines, 2);
  EXPECT_FALSE(q2r2.unit_jobs_only);
  EXPECT_EQ(q2r2.guarantee, Guarantee::kExact);

  const auto& q2unit = reg.find("q2unitfptas")->capabilities();
  EXPECT_TRUE(q2unit.unit_jobs_only);
  EXPECT_EQ(q2unit.max_machines, 2);
  EXPECT_EQ(q2unit.guarantee, Guarantee::kExact);
  EXPECT_GT(q2unit.max_jobs, 0);  // the O(n^3) proof route must stay bounded

  const auto& q2fptas = reg.find("q2fptas")->capabilities();
  EXPECT_EQ(q2fptas.models, engine::kModelUniform);
  EXPECT_EQ(q2fptas.max_machines, 2);
  EXPECT_EQ(q2fptas.guarantee, Guarantee::kFptas);
}

TEST(Registry, Q2CompanionsAgreeWithTheSplitDp) {
  Rng rng(77);
  const auto& reg = SolverRegistry::builtin();
  for (int trial = 0; trial < 8; ++trial) {
    // General weights: q2r2exact must match q2dp's optimum; the FPTAS stays
    // within 1 + eps of it.
    const auto inst = testing::random_uniform_instance(5, 5, 2, 4, 3, rng);
    const auto dp = engine::solve_named(reg, "q2dp", inst, {});
    ASSERT_TRUE(dp.ok) << dp.error;
    const auto via_r2 = engine::solve_named(reg, "q2r2exact", inst, {});
    ASSERT_TRUE(via_r2.ok) << via_r2.error;
    EXPECT_EQ(dp.cmax, via_r2.cmax);

    engine::SolveOptions options;
    options.eps = 0.05;
    const auto fptas = engine::solve_named(reg, "q2fptas", inst, options);
    ASSERT_TRUE(fptas.ok) << fptas.error;
    EXPECT_LE(fptas.cmax.to_double(), dp.cmax.to_double() * 1.05 + 1e-9);

    // Unit weights: the Theorem-4 proof route matches the split DP exactly.
    const auto unit = make_uniform_instance(
        std::vector<std::int64_t>(static_cast<std::size_t>(inst.num_jobs()), 1),
        inst.speeds, inst.conflicts);
    const auto split = engine::solve_named(reg, "q2exact", unit, {});
    ASSERT_TRUE(split.ok) << split.error;
    const auto proof = engine::solve_named(reg, "q2unitfptas", unit, {});
    ASSERT_TRUE(proof.ok) << proof.error;
    EXPECT_EQ(split.cmax, proof.cmax);
  }
}

TEST(Probe, RecognizesStructure) {
  // K_{2,3}, unit jobs.
  const auto complete = make_uniform_instance({1, 1, 1, 1, 1}, {2, 1},
                                              complete_bipartite(2, 3));
  const auto profile = engine::probe(complete);
  EXPECT_EQ(profile.model, engine::kModelUniform);
  EXPECT_EQ(profile.jobs, 5);
  EXPECT_EQ(profile.machines, 2);
  EXPECT_TRUE(profile.unit_jobs);
  EXPECT_TRUE(profile.has_class(engine::kGraphBipartite));
  EXPECT_TRUE(profile.has_class(engine::kGraphCompleteBipartite));
  // Lattice closure: a complete bipartite graph is also complete
  // multipartite (two parts) and trivially "any".
  EXPECT_TRUE(profile.has_class(engine::kGraphCompleteMultipartite));
  EXPECT_TRUE(profile.has_class(engine::kGraphAny));
  EXPECT_EQ(profile.total_work, 5);
  EXPECT_EQ(profile.speed_lcm, 2);  // lcm(2, 1); set only for two machines

  // Two disjoint edges: bipartite but not one spanning K_{a,b}.
  Graph two_edges(4);
  two_edges.add_edge(0, 1);
  two_edges.add_edge(2, 3);
  const auto sparse = make_uniform_instance({2, 1, 1, 1}, {1, 1}, std::move(two_edges));
  const auto sparse_profile = engine::probe(sparse);
  EXPECT_TRUE(sparse_profile.has_class(engine::kGraphBipartite));
  EXPECT_FALSE(sparse_profile.has_class(engine::kGraphCompleteBipartite));
  EXPECT_FALSE(sparse_profile.has_class(engine::kGraphCompleteMultipartite));
  EXPECT_FALSE(sparse_profile.unit_jobs);
  EXPECT_EQ(sparse_profile.total_work, 5);

  // Triangle: not bipartite.
  Graph triangle(3);
  triangle.add_edge(0, 1);
  triangle.add_edge(1, 2);
  triangle.add_edge(0, 2);
  const auto odd = make_uniform_instance({1, 1, 1}, {1, 1, 1}, std::move(triangle));
  EXPECT_FALSE(engine::probe(odd).has_class(engine::kGraphBipartite));
  // A triangle is K_{1,1,1}: complete multipartite without being bipartite —
  // the classes are incomparable in the lattice, not nested.
  EXPECT_TRUE(engine::probe(odd).has_class(engine::kGraphCompleteMultipartite));
  EXPECT_EQ(engine::probe(odd).speed_lcm, 0);  // three machines: no Q2 embedding

  // Unrelated probe: total_work is the sum of per-job worst-case times.
  const auto r2 = make_unrelated_instance({{3, 1}, {2, 5}}, Graph(2));
  const auto r2_profile = engine::probe(r2);
  EXPECT_EQ(r2_profile.model, engine::kModelUnrelated);
  EXPECT_EQ(r2_profile.total_work, 3 + 5);
}

TEST(Applicability, RankedByGuaranteeStrength) {
  Rng rng(42);
  // Unit-job Q2 bipartite instance: q2exact should outrank every
  // approximation, and the may_fail branch-and-bound must not come first.
  const auto inst = testing::random_uniform_instance(6, 6, 2, 1, 4, rng);
  const auto eligible = SolverRegistry::builtin().applicable(engine::probe(inst));
  ASSERT_FALSE(eligible.empty());
  EXPECT_EQ(eligible.front()->name(), "q2exact");
  EXPECT_FALSE(eligible.front()->capabilities().may_fail);
  for (std::size_t i = 1; i < eligible.size(); ++i) {
    EXPECT_LE(engine::guarantee_rank(eligible[i - 1]->capabilities().guarantee),
              engine::guarantee_rank(eligible[i]->capabilities().guarantee));
  }
}

TEST(Applicability, NonBipartiteFallsBackToGeneralSolvers) {
  Graph triangle(3);
  triangle.add_edge(0, 1);
  triangle.add_edge(1, 2);
  triangle.add_edge(0, 2);
  const auto inst = make_uniform_instance({2, 3, 4}, {1, 1, 1}, std::move(triangle));
  const auto eligible = SolverRegistry::builtin().applicable(engine::probe(inst));
  std::set<std::string> names;
  for (const auto* s : eligible) names.insert(s->name());
  EXPECT_EQ(names, (std::set<std::string>{"exact", "greedy"}));
}

TEST(Applicability, SingleMachineWithConflictsOnlyOffersFailureAwareSolvers) {
  Graph edge(2);
  edge.add_edge(0, 1);
  const auto inst = make_uniform_instance({1, 1}, {1}, std::move(edge));
  const auto eligible = SolverRegistry::builtin().applicable(engine::probe(inst));
  for (const auto* s : eligible) {
    EXPECT_TRUE(s->capabilities().may_fail) << s->name();
  }
}

TEST(Applicability, ExplainsRejections) {
  Rng rng(7);
  const auto r2 = testing::random_r2_instance(4, 4, 10, rng);
  const auto profile = engine::probe(r2);
  std::string why;
  EXPECT_FALSE(engine::is_applicable(
      SolverRegistry::builtin().find("alg1")->capabilities(), profile, &why));
  EXPECT_EQ(why, "wrong machine model");

  const auto big = testing::random_uniform_instance(40, 40, 3, 5, 4, rng);
  std::string why_big;
  EXPECT_FALSE(engine::is_applicable(
      SolverRegistry::builtin().find("exact")->capabilities(), engine::probe(big),
      &why_big));
  EXPECT_EQ(why_big, "handles <= 64 jobs");
}

}  // namespace
}  // namespace bisched

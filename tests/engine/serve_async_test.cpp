// Async serve core tests: the epoll readiness loop (engine/serve/event_loop)
// against the contracts the thread-per-client core set — byte-identical
// responses on the same frame stream (the differential test), pipelined
// responses in send order, incremental frame parsing under a slow writer,
// parked-reads backpressure, idle-timeout reaping, and a many-idle-sessions
// smoke at a scale the blocking core's thread-per-connection model would
// choke on.
#include <chrono>
#include "engine/serve.hpp"

#include <gtest/gtest.h>

#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/fault.hpp"
#include "engine/transport.hpp"
#include "io/format.hpp"
#include "testing_util.hpp"
#include "util/prng.hpp"

namespace bisched {
namespace {

namespace fs = std::filesystem;

using engine::ServeOptions;
using engine::SolverRegistry;

std::string instance_text(const UniformInstance& inst) {
  std::ostringstream out;
  write_instance(out, inst);
  return out.str();
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) lines.push_back(line);
  return lines;
}

int connect_with_retry(const std::string& socket_path) {
  for (int attempt = 0; attempt < 500; ++attempt) {
    std::string error;
    const int fd = engine::unix_connect(socket_path, &error);
    if (fd >= 0) return fd;
    ::usleep(10'000);
  }
  return -1;
}

void write_all(int fd, const std::string& text) {
  std::size_t off = 0;
  while (off < text.size()) {
    const ssize_t n = ::write(fd, text.data() + off, text.size() - off);
    ASSERT_GT(n, 0) << std::strerror(errno);
    off += static_cast<std::size_t>(n);
  }
}

std::string read_to_eof(int fd) {
  std::string out;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) out.append(buf, static_cast<std::size_t>(n));
  return out;
}

// Serves `stream` over one unix-socket session on the given core and returns
// the full response byte stream plus the server's aggregate stats.
std::pair<std::string, engine::ServeStats> one_shot_session(
    const std::string& stream, ServeOptions options, const std::string& tag) {
  const auto dir = fs::temp_directory_path() / ("bisched_async_" + tag);
  fs::create_directories(dir);
  const std::string socket_path = (dir / "serve.sock").string();

  engine::ServeStats stats;
  std::string serve_error;
  std::thread server([&] {
    stats = engine::serve_unix(SolverRegistry::builtin(), socket_path, options,
                               &serve_error);
  });

  const int fd = connect_with_retry(socket_path);
  EXPECT_GE(fd, 0) << serve_error;
  std::string response;
  if (fd >= 0) {
    write_all(fd, stream);
    ::shutdown(fd, SHUT_WR);
    response = read_to_eof(fd);
    ::close(fd);
  }

  const int bye = connect_with_retry(socket_path);
  EXPECT_GE(bye, 0);
  if (bye >= 0) {
    write_all(bye, "shutdown\n");
    ::close(bye);
  }
  server.join();
  fs::remove_all(dir);
  EXPECT_TRUE(serve_error.empty()) << serve_error;
  return {response, stats};
}

// ---------------------------------------------------------------------------
// The differential test: the same frame stream — solves in every form, a
// malformed frame, a malformed body with resync, a reserved id — through the
// thread-per-client core and the epoll core must produce byte-identical
// responses (threads=1 keeps seq assignment deterministic, --stable strips
// timing; both servers start from a fresh private warm state).

TEST(ServeAsync, ByteIdenticalWithTheBlockingCoreOnTheSameStream) {
  Rng rng(61);
  const auto inst = testing::random_uniform_instance(5, 5, 2, 4, 3, rng);
  const std::string text = instance_text(inst);
  std::string json_text;
  for (char c : text) {
    if (c == '\n') {
      json_text += "\\n";
    } else {
      json_text += c;
    }
  }

  std::ostringstream stream;
  stream << "# comment, then a blank line\n\n";
  stream << "instance native-1\n" << text;
  stream << "{\"id\": \"inline-json\", \"instance\": \"" << json_text << "\"}\n";
  stream << "bogus frame\n";
  stream << "instance broken\n"
         << "bisched uniform v1\njobs 3\np 1 2 3\nspeds 2\n2 1\nedges 0\n"
         << "\n";  // resync point after the malformed body
  stream << "instance native-2\n" << text;  // cache hit, same either way
  stream << "solve /nonexistent.inst missing\n";
  stream << "{\"id\": \"#7\", \"path\": \"x\"}\n";  // reserved id form
  stream << "quit\n";

  ServeOptions options;
  options.threads = 1;
  options.stable_output = true;

  ServeOptions async = options;
  async.core = ServeOptions::Core::kAsync;
  ServeOptions threads = options;
  threads.core = ServeOptions::Core::kThreads;

  const auto [async_out, async_stats] =
      one_shot_session(stream.str(), async, "diff_async");
  const auto [threads_out, threads_stats] =
      one_shot_session(stream.str(), threads, "diff_threads");

  EXPECT_EQ(async_out, threads_out);
  EXPECT_FALSE(async_out.empty());
  EXPECT_EQ(async_stats.requests, threads_stats.requests);
  EXPECT_EQ(async_stats.ok, threads_stats.ok);
  EXPECT_EQ(async_stats.errors, threads_stats.errors);
  EXPECT_EQ(async_stats.malformed, threads_stats.malformed);
  // Spot-check the shared surface, not just the equality.
  EXPECT_NE(async_out.find("\"id\": \"native-1\""), std::string::npos) << async_out;
  EXPECT_NE(async_out.find("\"id\": \"inline-json\""), std::string::npos);
  EXPECT_NE(async_out.find("unrecognized frame"), std::string::npos);
  EXPECT_NE(async_out.find("parse error"), std::string::npos);
  EXPECT_NE(async_out.find("\"cache\": \"hit-memory\""), std::string::npos);
  EXPECT_NE(async_out.find("reserved #<digits> form"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Pipelining: many frames written in ONE burst before any response is read.
// The pool (threads > 1) may finish them out of order; the wire must still
// carry responses in send order, per session.

TEST(ServeAsync, PipelinedResponsesComeBackInSendOrder) {
  Rng rng(62);
  // A heavyweight leader then lightweight followers: if completion order
  // leaked to the wire, a follower would overtake the leader.
  const auto big = testing::random_uniform_instance(24, 24, 3, 50, 5, rng);
  const auto small = testing::random_uniform_instance(4, 4, 2, 3, 3, rng);

  std::ostringstream stream;
  stream << "instance order-0\n" << instance_text(big);
  for (int i = 1; i <= 8; ++i) {
    stream << "instance order-" << i << "\n" << instance_text(small);
  }
  stream << "quit\n";

  ServeOptions options;
  options.threads = 4;
  options.stable_output = true;
  const auto [out, stats] = one_shot_session(stream.str(), options, "pipeline");

  EXPECT_EQ(stats.ok, 9u);
  EXPECT_EQ(stats.errors, 0u);
  const auto lines = lines_of(out);
  ASSERT_EQ(lines.size(), 9u) << out;
  for (int i = 0; i < 9; ++i) {
    const std::string id = "\"id\": \"order-" + std::to_string(i) + "\"";
    EXPECT_NE(lines[static_cast<std::size_t>(i)].find(id), std::string::npos)
        << "position " << i << " got: " << lines[static_cast<std::size_t>(i)];
  }
}

// ---------------------------------------------------------------------------
// A slow writer dribbling one frame byte-by-byte must neither block other
// sessions (the loop never waits on one socket) nor corrupt framing (the
// incremental scanner resumes mid-token across reads).

TEST(ServeAsync, SlowWriterDoesNotBlockOtherSessionsOrBreakFraming) {
  Rng rng(63);
  const auto inst = testing::random_uniform_instance(5, 5, 2, 4, 3, rng);
  const std::string text = instance_text(inst);

  const auto dir = fs::temp_directory_path() / "bisched_async_slowwriter";
  fs::create_directories(dir);
  const std::string socket_path = (dir / "serve.sock").string();

  engine::ServeStats stats;
  std::string serve_error;
  ServeOptions options;
  options.threads = 2;
  options.stable_output = true;
  std::thread server([&] {
    stats = engine::serve_unix(SolverRegistry::builtin(), socket_path, options,
                               &serve_error);
  });

  const int slow = connect_with_retry(socket_path);
  ASSERT_GE(slow, 0) << serve_error;
  const std::string slow_frame = "instance dribble\n" + text;
  // Send the first half byte by byte, leaving the frame dangling mid-body.
  const std::size_t half = slow_frame.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    ASSERT_EQ(::write(slow, slow_frame.data() + i, 1), 1);
  }

  // A second client runs a complete conversation while the first dangles.
  const int fast = connect_with_retry(socket_path);
  ASSERT_GE(fast, 0);
  write_all(fast, "instance quick\n" + text);
  ::shutdown(fast, SHUT_WR);
  const std::string fast_out = read_to_eof(fast);
  ::close(fast);
  EXPECT_NE(fast_out.find("\"id\": \"quick\""), std::string::npos) << fast_out;
  EXPECT_NE(fast_out.find("\"status\": \"ok\""), std::string::npos) << fast_out;

  // Finish the slow frame; it must parse as one clean request.
  for (std::size_t i = half; i < slow_frame.size(); ++i) {
    ASSERT_EQ(::write(slow, slow_frame.data() + i, 1), 1);
  }
  ::shutdown(slow, SHUT_WR);
  const std::string slow_out = read_to_eof(slow);
  ::close(slow);
  EXPECT_NE(slow_out.find("\"id\": \"dribble\""), std::string::npos) << slow_out;
  EXPECT_NE(slow_out.find("\"status\": \"ok\""), std::string::npos) << slow_out;

  const int bye = connect_with_retry(socket_path);
  ASSERT_GE(bye, 0);
  write_all(bye, "shutdown\n");
  ::close(bye);
  server.join();
  fs::remove_all(dir);
  EXPECT_TRUE(serve_error.empty()) << serve_error;
  EXPECT_EQ(stats.ok, 2u);
  EXPECT_EQ(stats.errors, 0u);
}

// ---------------------------------------------------------------------------
// The auth gate over the async core: pre-auth frames get one error line and
// a closed session; the right token admits silently.

TEST(ServeAsync, AuthGateHoldsOverTheEventLoop) {
  Rng rng(64);
  const auto inst = testing::random_uniform_instance(4, 4, 2, 3, 3, rng);
  const std::string text = instance_text(inst);

  ServeOptions options;
  options.threads = 1;
  options.stable_output = true;
  options.auth_token = "sesame";

  {
    const auto [out, stats] = one_shot_session(
        "instance sneak\n" + text + "instance sneak2\n" + text, options,
        "auth_sneak");
    const auto lines = lines_of(out);
    ASSERT_EQ(lines.size(), 1u) << out;
    EXPECT_NE(lines[0].find("auth required"), std::string::npos);
    EXPECT_EQ(stats.ok, 0u);
    EXPECT_EQ(stats.errors, 1u);
  }
  {
    const auto [out, stats] = one_shot_session(
        "auth sesame\ninstance good\n" + text, options, "auth_good");
    const auto lines = lines_of(out);
    ASSERT_EQ(lines.size(), 1u) << out;
    EXPECT_NE(lines[0].find("\"id\": \"good\""), std::string::npos);
    EXPECT_NE(lines[0].find("\"status\": \"ok\""), std::string::npos);
    EXPECT_EQ(stats.ok, 1u);
    EXPECT_EQ(stats.auth_frames, 1u);
  }
}

// ---------------------------------------------------------------------------
// Idle-timeout reaping: a session that never completes a frame is closed
// (read returns EOF) while an active session is untouched.

TEST(ServeAsync, IdleTimeoutReapsSilentSessionsOnly) {
  Rng rng(65);
  const auto inst = testing::random_uniform_instance(4, 4, 2, 3, 3, rng);
  const std::string text = instance_text(inst);

  const auto dir = fs::temp_directory_path() / "bisched_async_idle";
  fs::create_directories(dir);
  const std::string socket_path = (dir / "serve.sock").string();

  engine::ServeStats stats;
  std::string serve_error;
  ServeOptions options;
  options.threads = 1;
  options.stable_output = true;
  options.idle_timeout_ms = 150;
  std::thread server([&] {
    stats = engine::serve_unix(SolverRegistry::builtin(), socket_path, options,
                               &serve_error);
  });

  const int idle = connect_with_retry(socket_path);
  ASSERT_GE(idle, 0) << serve_error;

  // The active session keeps completing frames past the idle window.
  const int active = connect_with_retry(socket_path);
  ASSERT_GE(active, 0);
  engine::FdTransport transport(active, "active");
  for (int i = 0; i < 4; ++i) {
    transport.out() << "instance keepalive-" << i << "\n" << text;
    transport.out().flush();
    std::string line;
    ASSERT_TRUE(static_cast<bool>(std::getline(transport.in(), line)));
    EXPECT_NE(line.find("\"status\": \"ok\""), std::string::npos) << line;
    ::usleep(60'000);
  }

  // By now (>= 240ms silent) the idle holdout must have been reaped: its
  // socket reads EOF without the server shutting down.
  std::string leftovers = read_to_eof(idle);
  EXPECT_TRUE(leftovers.empty()) << leftovers;  // closed, no response line
  ::close(idle);

  transport.out() << "shutdown\n";
  transport.out().flush();
  server.join();
  fs::remove_all(dir);
  EXPECT_TRUE(serve_error.empty()) << serve_error;
  EXPECT_EQ(stats.ok, 4u);
  EXPECT_EQ(stats.errors, 0u);
}

// ---------------------------------------------------------------------------
// Many-idle-sessions smoke: ~1k open connections (bounded by RLIMIT_NOFILE —
// both ends live in this one process) cost the server nothing; an active
// request cuts through them promptly.

TEST(ServeAsync, ThousandIdleSessionsDoNotStallAnActiveOne) {
  Rng rng(66);
  const auto inst = testing::random_uniform_instance(4, 4, 2, 3, 3, rng);
  const std::string text = instance_text(inst);

  struct rlimit lim {};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &lim), 0);
  if (lim.rlim_cur < lim.rlim_max) {
    lim.rlim_cur = std::min<rlim_t>(lim.rlim_max, 4096);
    ::setrlimit(RLIMIT_NOFILE, &lim);
    ::getrlimit(RLIMIT_NOFILE, &lim);
  }
  // Client fd + server fd per session, plus headroom for the suite's own
  // files: stay well under the ceiling.
  const std::size_t idle_count =
      std::min<std::size_t>(1000, (static_cast<std::size_t>(lim.rlim_cur) - 128) / 2);
  ASSERT_GT(idle_count, 50u) << "fd limit too low to exercise idle scale";

  const auto dir = fs::temp_directory_path() / "bisched_async_scale";
  fs::create_directories(dir);
  const std::string socket_path = (dir / "serve.sock").string();

  engine::ServeStats stats;
  std::string serve_error;
  ServeOptions options;
  options.threads = 2;
  options.stable_output = true;
  std::thread server([&] {
    stats = engine::serve_unix(SolverRegistry::builtin(), socket_path, options,
                               &serve_error);
  });

  std::vector<int> idle_fds;
  idle_fds.reserve(idle_count);
  for (std::size_t i = 0; i < idle_count; ++i) {
    const int fd = connect_with_retry(socket_path);
    ASSERT_GE(fd, 0) << "after " << i << " idle sessions: " << serve_error;
    idle_fds.push_back(fd);
  }

  // One active request through the crowd — and it must still be prompt.
  // 5 s is glacial for a 4-job solve on an idle pool but still catches the
  // failure mode this pins (the loop grinding through idle sessions), even
  // on a 1-CPU sanitizer runner.
  const int active = connect_with_retry(socket_path);
  ASSERT_GE(active, 0);
  const auto t0 = std::chrono::steady_clock::now();
  write_all(active, "instance through-the-crowd\n" + text);
  ::shutdown(active, SHUT_WR);
  const std::string out = read_to_eof(active);
  const double active_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
  ::close(active);
  EXPECT_NE(out.find("\"id\": \"through-the-crowd\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"status\": \"ok\""), std::string::npos) << out;
  EXPECT_LT(active_ms, 5000.0)
      << "active request stalled behind " << idle_count << " idle sessions";

  const int bye = connect_with_retry(socket_path);
  ASSERT_GE(bye, 0);
  write_all(bye, "shutdown\n");
  ::close(bye);
  server.join();
  for (const int fd : idle_fds) ::close(fd);
  fs::remove_all(dir);

  EXPECT_TRUE(serve_error.empty()) << serve_error;
  EXPECT_EQ(stats.ok, 1u);
  EXPECT_EQ(stats.errors, 0u);
  // Every idle holdout was registered as a session.
  EXPECT_GE(stats.sessions, idle_count + 2);
}

// ---------------------------------------------------------------------------
// Backpressure: with pipeline_depth=2 and stalled workers, a burst of frames
// is parked rather than refused — every frame is eventually answered, unlike
// the session_max_inflight quota path (which refuses inline; that behavior
// is pinned by the blocking-core quota test and shared via dispatch).

TEST(ServeAsync, PipelineDepthParksReadsInsteadOfRefusing) {
  Rng rng(67);
  const auto inst = testing::random_uniform_instance(4, 4, 2, 3, 3, rng);
  const std::string text = instance_text(inst);

  ASSERT_EQ(::setenv("BISCHED_FAULT", "stall-ms:50", 1), 0);
  engine::fault::refresh_from_env();

  ServeOptions options;
  options.threads = 2;
  options.stable_output = true;
  options.pipeline_depth = 2;

  std::ostringstream stream;
  for (int i = 0; i < 6; ++i) {
    stream << "instance parked-" << i << "\n" << text;
  }
  stream << "quit\n";
  const auto [out, stats] = one_shot_session(stream.str(), options, "park");

  ::unsetenv("BISCHED_FAULT");
  engine::fault::refresh_from_env();

  EXPECT_EQ(stats.ok, 6u);
  EXPECT_EQ(stats.errors, 0u);  // parked, not over-quota errors
  const auto lines = lines_of(out);
  ASSERT_EQ(lines.size(), 6u) << out;
  for (int i = 0; i < 6; ++i) {
    EXPECT_NE(lines[static_cast<std::size_t>(i)].find(
                  "\"id\": \"parked-" + std::to_string(i) + "\""),
              std::string::npos)
        << lines[static_cast<std::size_t>(i)];
  }
}

}  // namespace
}  // namespace bisched

// Telemetry tests: histogram bucket/percentile math (including under
// concurrent recording), the counter mirror ratchet, span-tree nesting and
// rendering, the serve round trip carrying elapsed_ms / trace ids / metrics
// frames, the golden-pinned metric catalog, and the slow-request log.
#include "engine/telemetry/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/serve.hpp"
#include "engine/telemetry/trace.hpp"
#include "sched/simd_dispatch.hpp"
#include "io/format.hpp"
#include "io/jsonl.hpp"
#include "testing_util.hpp"
#include "util/prng.hpp"

namespace bisched {
namespace {

namespace telemetry = engine::telemetry;

TEST(TelemetryHistogram, BucketBoundariesAreUpperInclusive) {
  telemetry::Histogram h({1, 2, 4});
  h.observe(1.0);  // == bound: belongs to le="1"
  h.observe(1.5);
  h.observe(3.0);
  h.observe(8.0);  // beyond the last bound: +Inf bucket

  const auto snap = h.snapshot();
  ASSERT_EQ(snap.buckets.size(), 4u);
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[2], 1u);
  EXPECT_EQ(snap.buckets[3], 1u);
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 13.5);
}

TEST(TelemetryHistogram, PercentilesInterpolateWithinTheOwningBucket) {
  telemetry::Histogram h({1, 2, 4});
  for (double v : {1.0, 1.5, 3.0, 8.0}) h.observe(v);
  const auto snap = h.snapshot();

  // rank(0.25) = 1 → first bucket, interpolated to its upper bound.
  EXPECT_DOUBLE_EQ(snap.percentile(0.25), 1.0);
  // rank(0.5) = 2 → second bucket (1, 2], fraction 1 → 2.0.
  EXPECT_DOUBLE_EQ(snap.percentile(0.5), 2.0);
  // rank(0.99) = 3.96 → +Inf bucket, clamped to the largest finite bound.
  EXPECT_DOUBLE_EQ(snap.percentile(0.99), 4.0);

  telemetry::Histogram empty({1, 2});
  EXPECT_DOUBLE_EQ(empty.snapshot().percentile(0.5), 0.0);
}

TEST(TelemetryHistogram, ConcurrentRecordingLosesNothing) {
  telemetry::Histogram h(telemetry::Histogram::default_latency_bounds_ms());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.observe(0.5 + static_cast<double>((t + i) % 7));
      }
    });
  }
  for (auto& th : threads) th.join();

  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads * kPerThread));
  std::uint64_t total = 0;
  for (const auto b : snap.buckets) total += b;
  EXPECT_EQ(total, snap.count);
  // Every observation is >= 0.5, so the CAS-accumulated sum must be too.
  EXPECT_GE(snap.sum, 0.5 * static_cast<double>(snap.count));
}

TEST(TelemetryCounter, MirrorRatchetsUpButNeverDown) {
  telemetry::Counter c;
  c.mirror(10);
  EXPECT_EQ(c.value(), 10u);
  c.mirror(7);  // an older external total must not regress the counter
  EXPECT_EQ(c.value(), 10u);
  c.inc(5);
  c.mirror(12);  // already past 12 via inc — no change
  EXPECT_EQ(c.value(), 15u);
}

TEST(TelemetryRegistry, ExposesFamiliesInRegistrationOrderAndDedupes) {
  telemetry::Registry reg;
  telemetry::Counter& a = reg.counter("t_total", "help a", "k=\"1\"");
  telemetry::Counter& same = reg.counter("t_total", "help a", "k=\"1\"");
  EXPECT_EQ(&a, &same);  // one (name, labels) → one object
  reg.gauge("t_gauge", "help b");
  a.inc(3);

  const std::string text = reg.expose();
  EXPECT_NE(text.find("# TYPE t_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("t_total{k=\"1\"} 3\n"), std::string::npos);
  EXPECT_LT(text.find("t_total"), text.find("t_gauge"));
}

TEST(TelemetryTrace, SpanTreeNestsAndRendersBothForms) {
  telemetry::Trace trace("t-00000000-9");
  telemetry::TraceSpan* probe = trace.root().child("probe");
  probe->set_detail("miss");
  telemetry::TraceSpan* solve = trace.root().child("solve");
  telemetry::TraceSpan* kernel = solve->child("q2exact");
  kernel->set_ms(1.5);
  solve->set_ms(2);
  probe->set_ms(0.25);
  trace.root().set_ms(3);

  EXPECT_EQ(trace.id(), "t-00000000-9");
  ASSERT_EQ(trace.root().children().size(), 2u);
  EXPECT_EQ(trace.root().children()[1].children()[0].name(), "q2exact");

  EXPECT_EQ(trace.spans_json(false),
            "[{\"name\": \"request\", \"ms\": 3, \"spans\": ["
            "{\"name\": \"probe\", \"detail\": \"miss\", \"ms\": 0.25}, "
            "{\"name\": \"solve\", \"ms\": 2, \"spans\": ["
            "{\"name\": \"q2exact\", \"ms\": 1.5}]}]}]");
  EXPECT_EQ(trace.compact(false), "request:3(probe[miss]:0.25,solve:2(q2exact:1.5))");
  // --stable rendering: the tree shape survives, every duration reads 0.
  EXPECT_EQ(trace.compact(true), "request:0(probe[miss]:0,solve:0(q2exact:0))");
}

TEST(TelemetryTrace, ProcessUniqueIdsAreSequential) {
  const std::string a = telemetry::next_trace_id();
  const std::string b = telemetry::next_trace_id();
  EXPECT_EQ(a.rfind("t-", 0), 0u);
  EXPECT_NE(a, b);
  EXPECT_EQ(a.substr(0, 11), b.substr(0, 11));  // same process tag
}

// ---------------------------------------------------------------------------
// Serve integration: real timing on the wire, the metrics frame, the golden
// metric catalog, and the slow log.

std::string instance_text() {
  Rng rng(53);
  const auto inst = testing::random_uniform_instance(4, 4, 2, 3, 3, rng);
  std::ostringstream out;
  write_instance(out, inst);
  return out.str();
}

TEST(TelemetryServe, ResponsesCarryElapsedAndTraceAndMetricsFrameExposes) {
  // Two sequential sessions over one WarmState: the first (the solve) drains
  // before serve() returns, so the second session's scrape reads settled
  // counter values instead of racing the pool.
  engine::WarmState warm;
  engine::ServeOptions options;
  options.threads = 1;  // NOT stable_output: real timings must survive

  std::istringstream solve_in("instance a\n" + instance_text());
  std::ostringstream solve_out;
  const auto solve_stats = engine::serve(engine::SolverRegistry::builtin(),
                                         solve_in, solve_out, options, &warm);
  EXPECT_EQ(solve_stats.requests, 1u);
  EXPECT_EQ(solve_stats.solve_frames, 1u);
  EXPECT_EQ(solve_stats.malformed, 0u);

  std::string solve_line = solve_out.str();
  ASSERT_FALSE(solve_line.empty());
  solve_line.pop_back();  // trailing '\n'
  std::string error;
  const auto solve = parse_flat_json_object(solve_line, &error);
  ASSERT_TRUE(solve.has_value()) << error << " in " << solve_line;
  ASSERT_EQ(solve->count("elapsed_ms"), 1u);
  EXPECT_GT(std::stod(solve->at("elapsed_ms")), 0.0);
  ASSERT_EQ(solve->count("trace_id"), 1u);
  EXPECT_EQ(solve->at("trace_id").rfind("t-", 0), 0u);

  std::istringstream metrics_in("metrics m1\n");
  std::ostringstream metrics_out;
  const auto scrape_stats = engine::serve(engine::SolverRegistry::builtin(),
                                          metrics_in, metrics_out, options, &warm);
  EXPECT_EQ(scrape_stats.metrics_frames, 1u);

  std::string metrics_line = metrics_out.str();
  ASSERT_FALSE(metrics_line.empty());
  metrics_line.pop_back();
  const auto frame = parse_flat_json_object(metrics_line, &error);
  ASSERT_TRUE(frame.has_value()) << error << " in " << metrics_line;
  EXPECT_EQ(frame->at("type"), "metrics");
  EXPECT_EQ(frame->at("id"), "m1");
  EXPECT_EQ(frame->at("content_type"), "text/plain; version=0.0.4");
  const std::string& body = frame->at("body");
  EXPECT_NE(body.find("bisched_solves_total{status=\"ok\"} 1\n"), std::string::npos)
      << body;
  EXPECT_NE(body.find("# TYPE bisched_solve_latency_ms histogram\n"),
            std::string::npos);
  EXPECT_NE(body.find("bisched_solve_latency_ms_count 1\n"), std::string::npos);
  EXPECT_NE(body.find("bisched_cache_lookups_total{cache=\"profile\",result=\"miss\"} 1\n"),
            std::string::npos)
      << body;
  // The metrics frame counted itself before answering.
  EXPECT_NE(body.find("bisched_serve_frames_total{type=\"metrics\"} 1\n"),
            std::string::npos);
  EXPECT_NE(body.find("bisched_serve_frames_total{type=\"solve\"} 1\n"),
            std::string::npos);
  // Info gauge: the resolved SIMD dispatch level, value pinned to 1.
  EXPECT_NE(body.find(std::string("bisched_simd_level{level=\"") +
                      to_string(simd_level()) + "\"} 1\n"),
            std::string::npos)
      << body;
}

TEST(TelemetryServe, RequestedSpansRideTheWireAsNestedJson) {
  std::string escaped;
  for (char c : instance_text()) {
    if (c == '\n') {
      escaped += "\\n";
    } else {
      escaped += c;
    }
  }
  std::istringstream in("{\"id\": \"s1\", \"instance\": \"" + escaped +
                        "\", \"spans\": true}\n");
  std::ostringstream out;
  engine::ServeOptions options;
  options.threads = 1;
  options.stable_output = true;
  engine::serve(engine::SolverRegistry::builtin(), in, out, options);

  std::string line = out.str();
  line.pop_back();  // trailing '\n'
  std::string error;
  const auto response = parse_flat_json_object(line, &error);
  ASSERT_TRUE(response.has_value()) << error << " in " << line;
  ASSERT_EQ(response->count("spans"), 1u);
  const std::string& spans = response->at("spans");
  EXPECT_EQ(spans.rfind("[{\"name\": \"request\", \"ms\": 0", 0), 0u) << spans;
  EXPECT_NE(spans.find("\"name\": \"solve\""), std::string::npos);
  // Stable output still omits the nondeterministic trace id.
  EXPECT_EQ(response->count("trace_id"), 0u);
  EXPECT_EQ(response->at("elapsed_ms"), "0");
}

TEST(TelemetryServe, MetricCatalogMatchesTheCheckedInGolden) {
  engine::ServeOptions options;
  options.threads = 1;
  engine::Server server(engine::SolverRegistry::builtin(), options);

  std::vector<std::string> type_lines;
  std::istringstream exposition(server.metrics_text());
  std::string line;
  while (std::getline(exposition, line)) {
    if (line.rfind("# TYPE ", 0) == 0) type_lines.push_back(line);
  }

  std::ifstream golden_file(std::string(BISCHED_GOLDEN_DIR) + "/metric_names.txt");
  ASSERT_TRUE(golden_file.is_open())
      << "golden file missing: " << BISCHED_GOLDEN_DIR << "/metric_names.txt";
  std::vector<std::string> golden;
  while (std::getline(golden_file, line)) {
    if (!line.empty()) golden.push_back(line);
  }
  EXPECT_EQ(type_lines, golden)
      << "metric catalog drift — renaming or retyping a series breaks scrapers; "
         "update tests/engine/golden/metric_names.txt + docs/telemetry.md "
         "deliberately";
}

TEST(TelemetryServe, SlowLogEmitsOneStructuredLinePerSlowSolve) {
  std::ostringstream in_text;
  in_text << "instance a\n" << instance_text();
  in_text << "stats s1\n";  // introspection frames never hit the slow log
  std::istringstream in(in_text.str());
  std::ostringstream out;
  std::ostringstream slow;
  engine::ServeOptions options;
  options.threads = 1;
  options.slow_ms = 0;  // log every solve
  options.slow_log = &slow;
  engine::serve(engine::SolverRegistry::builtin(), in, out, options);

  const std::string log = slow.str();
  ASSERT_EQ(log.find("serve: slow-request trace=t-"), 0u) << log;
  EXPECT_NE(log.find(" status=ok "), std::string::npos) << log;
  EXPECT_NE(log.find(" elapsed_ms="), std::string::npos);
  EXPECT_NE(log.find(" cache=miss "), std::string::npos) << log;
  EXPECT_NE(log.find(" spans=request:"), std::string::npos) << log;
  // One solve → exactly one line.
  EXPECT_EQ(std::count(log.begin(), log.end(), '\n'), 1);
}

TEST(TelemetryServe, StatsFrameCarriesFrameCountsUptimeAndInflight) {
  // Same two-session pattern: the solve settles in session one, the stats
  // probe in session two reads deterministic values.
  engine::WarmState warm;
  engine::ServeOptions options;
  options.threads = 1;

  std::istringstream solve_in("instance a\n" + instance_text());
  std::ostringstream solve_out;
  engine::serve(engine::SolverRegistry::builtin(), solve_in, solve_out, options,
                &warm);

  std::istringstream in("stats s1\n");
  std::ostringstream out;
  engine::serve(engine::SolverRegistry::builtin(), in, out, options, &warm);

  std::string line = out.str();
  ASSERT_FALSE(line.empty());
  line.pop_back();  // trailing '\n'
  std::string error;
  const auto stats_obj = parse_flat_json_object(line, &error);
  ASSERT_TRUE(stats_obj.has_value()) << error << " in " << line;
  EXPECT_EQ(stats_obj->at("type"), "stats");
  EXPECT_EQ(stats_obj->at("solve_frames"), "1");
  EXPECT_EQ(stats_obj->at("stats_frames"), "1");  // counted itself on admission
  EXPECT_EQ(stats_obj->at("metrics_frames"), "0");
  EXPECT_EQ(stats_obj->at("malformed"), "0");
  EXPECT_EQ(stats_obj->at("requests"), "2");
  ASSERT_EQ(stats_obj->count("uptime_s"), 1u);
  EXPECT_GE(std::stod(stats_obj->at("uptime_s")), 0.0);
  // Nothing in flight in this session; the probe answered inline.
  EXPECT_EQ(stats_obj->at("inflight"), "0");
  EXPECT_EQ(stats_obj->at("session_inflight"), "0");
  EXPECT_EQ(stats_obj->at("sessions_active"), "1");
  EXPECT_EQ(stats_obj->at("sessions"), "2");
  // The resolved kernel dispatch level rides the stats frame for operators.
  EXPECT_EQ(stats_obj->at("simd"), to_string(simd_level()));
}

}  // namespace
}  // namespace bisched

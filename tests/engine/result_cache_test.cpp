// ResultCache tests, mirroring profile_cache_test.cpp: miss-then-hit
// round-trips, key sensitivity (alg / eps / options are part of the key, so
// different requests never alias), the only-ok-results policy, LRU bounding
// with eviction accounting, and the batch/serve integration through
// solve_to_row (the `solve_cache` row field).
#include "engine/result_cache.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "engine/batch.hpp"
#include "engine/profile_cache.hpp"
#include "engine/registry.hpp"
#include "io/format.hpp"
#include "testing_util.hpp"
#include "util/prng.hpp"

namespace bisched {
namespace {

using engine::ResultCache;
using engine::ResultKey;
using engine::SolveOptions;
using engine::SolveResult;

SolveResult ok_result(const std::string& solver, int jobs) {
  SolveResult r;
  r.ok = true;
  r.solver = solver;
  r.guarantee = "exact";
  r.schedule.machine_of.assign(static_cast<std::size_t>(jobs), 0);
  r.cmax = Rational(jobs);
  return r;
}

ResultKey key_of(std::uint64_t hash, const std::string& alg, double eps = 0.1) {
  SolveOptions solve;
  solve.eps = eps;
  return engine::make_result_key(hash, alg, solve);
}

TEST(ResultCache, MissThenHitReturnsTheStoredResult) {
  ResultCache cache;
  const ResultKey key = key_of(42, "auto");
  EXPECT_FALSE(cache.lookup(key).has_value());

  cache.store(key, ok_result("q2dp", 5));
  const auto warm = cache.lookup(key);
  ASSERT_TRUE(warm.has_value());
  EXPECT_TRUE(warm->ok);
  EXPECT_EQ(warm->solver, "q2dp");
  EXPECT_EQ(warm->schedule.machine_of.size(), 5u);
  EXPECT_EQ(warm->cmax, Rational(5));

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(ResultCache, KeyCoversAlgEpsAndOptions) {
  ResultCache cache;
  cache.store(key_of(7, "auto", 0.1), ok_result("a", 1));

  EXPECT_TRUE(cache.lookup(key_of(7, "auto", 0.1)).has_value());
  EXPECT_FALSE(cache.lookup(key_of(8, "auto", 0.1)).has_value());   // other instance
  EXPECT_FALSE(cache.lookup(key_of(7, "alg1", 0.1)).has_value());   // other solver
  EXPECT_FALSE(cache.lookup(key_of(7, "auto", 0.2)).has_value());   // other eps

  SolveOptions run_all;
  run_all.eps = 0.1;
  run_all.run_all = true;
  EXPECT_FALSE(
      cache.lookup(engine::make_result_key(7, "auto", run_all)).has_value());

  SolveOptions budgeted = run_all;
  budgeted.budget_ms = 50;
  const auto budget_key = engine::make_result_key(7, "auto", budgeted);
  cache.store(budget_key, ok_result("b", 2));
  EXPECT_TRUE(cache.lookup(budget_key).has_value());
  EXPECT_FALSE(
      cache.lookup(engine::make_result_key(7, "auto", run_all)).has_value());
}

TEST(ResultCache, FailedResultsAreNeverStored) {
  ResultCache cache;
  SolveResult failed;
  failed.ok = false;
  failed.error = "deadline exceeded";
  const ResultKey key = key_of(9, "auto");
  cache.store(key, failed);
  EXPECT_FALSE(cache.lookup(key).has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ResultCache, LruEvictsTheColdestEntryAndCounts) {
  ResultCache cache(2);
  cache.store(key_of(1, "auto"), ok_result("a", 1));
  cache.store(key_of(2, "auto"), ok_result("b", 2));
  // Touch 1 so 2 becomes the LRU entry, then insert a third.
  EXPECT_TRUE(cache.lookup(key_of(1, "auto")).has_value());
  cache.store(key_of(3, "auto"), ok_result("c", 3));

  EXPECT_TRUE(cache.lookup(key_of(1, "auto")).has_value());
  EXPECT_FALSE(cache.lookup(key_of(2, "auto")).has_value());  // evicted
  EXPECT_TRUE(cache.lookup(key_of(3, "auto")).has_value());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);

  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(ResultCache, SolveToRowMemoizesRepeatedSolves) {
  Rng rng(51);
  const auto inst = testing::random_uniform_instance(5, 5, 2, 4, 3, rng);
  std::ostringstream text;
  write_instance(text, inst);

  engine::WarmState warm_state;
  const auto solve_once = [&] {
    std::istringstream in(text.str());
    return engine::solve_to_row(engine::SolverRegistry::builtin(), warm_state, "auto",
                                SolveOptions{}, parse_instance(in));
  };

  const auto cold = solve_once();
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_TRUE(cold.result_cache_used);
  EXPECT_EQ(cold.result_tier, engine::CacheTier::kMiss);

  const auto warm = solve_once();
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_EQ(warm.result_tier, engine::CacheTier::kMemory);
  EXPECT_EQ(warm.solver, cold.solver);
  EXPECT_EQ(warm.makespan, cold.makespan);
  EXPECT_EQ(warm_state.results().stats().hits, 1u);
  EXPECT_EQ(warm_state.results().stats().misses, 1u);
  EXPECT_EQ(warm_state.results().stats().disk_hits, 0u);  // no store attached

  // A different eps is a different request: no false sharing.
  std::istringstream in(text.str());
  SolveOptions finer;
  finer.eps = 0.01;
  const auto other = engine::solve_to_row(engine::SolverRegistry::builtin(), warm_state,
                                          "auto", finer, parse_instance(in));
  ASSERT_TRUE(other.ok) << other.error;
  EXPECT_EQ(other.result_tier, engine::CacheTier::kMiss);
}

}  // namespace
}  // namespace bisched

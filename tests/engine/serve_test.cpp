// Serve-mode tests: the in-process loop (protocol, cache reuse, error
// frames) and a full subprocess round trip driving `bisched_cli serve`
// through pipes — the acceptance path: two sequential framed requests
// answered by one process, the second a recorded probe-cache hit, each
// response streamed back before the next request is even written.
#include "engine/serve.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/fault.hpp"
#include "io/format.hpp"
#include "io/jsonl.hpp"
#include "testing_util.hpp"
#include "util/prng.hpp"

namespace bisched {
namespace {

namespace fs = std::filesystem;

using engine::ServeOptions;
using engine::SolverRegistry;

std::string instance_text(const UniformInstance& inst) {
  std::ostringstream out;
  write_instance(out, inst);
  return out.str();
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) lines.push_back(line);
  return lines;
}

TEST(Serve, AnswersEveryFrameFormAndReusesTheCache) {
  Rng rng(41);
  const auto inst = testing::random_uniform_instance(4, 4, 2, 3, 3, rng);
  const std::string text = instance_text(inst);

  // Frame 1: inline native text. Frame 2: the same instance as an inline
  // JSON string (same content hash -> cache hit). Frame 3: bad frame.
  std::string escaped = text;
  std::string json_text;
  for (char c : escaped) {
    if (c == '\n') {
      json_text += "\\n";
    } else if (c == '"') {
      json_text += "\\\"";
    } else {
      json_text += c;
    }
  }
  std::ostringstream in_text;
  in_text << "# warm-up comment\n\n";
  in_text << "instance first\n" << text;
  in_text << "{\"id\": \"second\", \"instance\": \"" << json_text << "\"}\n";
  in_text << "bogus frame\n";
  in_text << "quit\n";
  in_text << "instance after-quit\n";  // must never be read

  std::istringstream in(in_text.str());
  std::ostringstream out;
  ServeOptions options;
  options.threads = 1;
  options.stable_output = true;
  const auto stats = engine::serve(SolverRegistry::builtin(), in, out, options);

  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.ok, 2u);
  EXPECT_EQ(stats.errors, 1u);
  EXPECT_EQ(stats.cache.hits, 1u);
  EXPECT_EQ(stats.cache.misses, 1u);

  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 3u);
  std::string first;
  std::string second;
  std::string bogus;
  for (const auto& line : lines) {
    if (line.find("\"id\": \"first\"") != std::string::npos) first = line;
    if (line.find("\"id\": \"second\"") != std::string::npos) second = line;
    if (line.find("unrecognized frame") != std::string::npos) bogus = line;
  }
  ASSERT_FALSE(first.empty());
  ASSERT_FALSE(second.empty());
  ASSERT_FALSE(bogus.empty());
  EXPECT_NE(first.find("\"cache\": \"miss\""), std::string::npos);
  EXPECT_NE(second.find("\"cache\": \"hit-memory\""), std::string::npos);
  EXPECT_NE(bogus.find("\"status\": \"error\""), std::string::npos);

  // Identical content: both responses carry the same hash and makespan.
  const auto field = [](const std::string& line, const char* key) {
    const auto at = line.find(key);
    if (at == std::string::npos) return std::string();
    return line.substr(at, line.find(',', at) - at);
  };
  EXPECT_EQ(field(first, "\"hash\": "), field(second, "\"hash\": "));
  EXPECT_EQ(field(first, "\"makespan\": "), field(second, "\"makespan\": "));
}

TEST(Serve, MalformedInlineBodyYieldsOneErrorAndResynchronizes) {
  Rng rng(44);
  const auto good = testing::random_uniform_instance(4, 4, 2, 3, 3, rng);
  // A body with a typo mid-file: the parser stops there; the loop must skip
  // the rest of the body (to the blank line) instead of answering each
  // leftover body line as a bogus frame.
  std::ostringstream in_text;
  in_text << "instance broken\n"
          << "bisched uniform v1\njobs 3\np 1 2 3\nspeds 2\n2 1\nedges 0\n"
          << "\n"  // resynchronization point
          << "instance good\n"
          << instance_text(good);
  std::istringstream in(in_text.str());
  std::ostringstream out;
  ServeOptions options;
  options.threads = 1;
  const auto stats = engine::serve(SolverRegistry::builtin(), in, out, options);

  EXPECT_EQ(stats.requests, 2u);  // broken + good, nothing in between
  EXPECT_EQ(stats.ok, 1u);
  EXPECT_EQ(stats.errors, 1u);
  // An `instance` header with extra tokens must also consume its body.
  std::istringstream in2("instance too many ids\n" + instance_text(good) +
                         "instance fine\n" + instance_text(good));
  std::ostringstream out2;
  const auto stats2 = engine::serve(SolverRegistry::builtin(), in2, out2, options);
  EXPECT_EQ(stats2.requests, 2u);
  EXPECT_EQ(stats2.ok, 1u);
  EXPECT_EQ(stats2.errors, 1u);
  EXPECT_NE(out2.str().find("at most one id"), std::string::npos);
  EXPECT_NE(out2.str().find("\"id\": \"fine\""), std::string::npos);
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 2u);
  const auto text = out.str();
  const auto broken = text.find("\"id\": \"broken\"");
  ASSERT_NE(broken, std::string::npos);
  EXPECT_NE(text.find("parse error", broken), std::string::npos);
  const auto goodr = text.find("\"id\": \"good\"");
  ASSERT_NE(goodr, std::string::npos);
  EXPECT_NE(text.find("\"status\": \"ok\"", goodr), std::string::npos);
}

TEST(Serve, PathRequestsAndPerRequestAlgOverrides) {
  Rng rng(42);
  const auto q2 = testing::random_uniform_instance(4, 4, 2, 3, 3, rng);
  const auto dir = fs::temp_directory_path() / "bisched_serve_inproc";
  fs::create_directories(dir);
  const auto path = (dir / "q2.inst").string();
  {
    std::ofstream f(path);
    write_instance(f, q2);
  }

  std::ostringstream in_text;
  in_text << "solve " << path << " by-line\n";
  in_text << "{\"id\": \"by-json\", \"path\": \"" << path << "\", \"alg\": \"split\"}\n";
  in_text << "{\"id\": \"missing\", \"path\": \"" << path << ".nope\"}\n";
  std::istringstream in(in_text.str());
  std::ostringstream out;
  ServeOptions options;
  options.threads = 1;
  const auto stats = engine::serve(SolverRegistry::builtin(), in, out, options);
  fs::remove_all(dir);

  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.ok, 2u);
  EXPECT_EQ(stats.errors, 1u);

  const auto text = out.str();
  EXPECT_NE(text.find("\"id\": \"by-line\""), std::string::npos);
  const auto by_json = text.find("\"id\": \"by-json\"");
  ASSERT_NE(by_json, std::string::npos);
  EXPECT_NE(text.find("\"solver\": \"split\"", by_json), std::string::npos);
  const auto missing = text.find("\"id\": \"missing\"");
  ASSERT_NE(missing, std::string::npos);
  EXPECT_NE(text.find("cannot open file", missing), std::string::npos);

  // A typo'd key must be rejected, not silently solved with defaults.
  std::istringstream in2("{\"id\": \"typo\", \"path\": \"" + path +
                         "\", \"ep\": 0.01}\n");
  std::ostringstream out2;
  const auto stats2 = engine::serve(SolverRegistry::builtin(), in2, out2, options);
  EXPECT_EQ(stats2.errors, 1u);
  EXPECT_NE(out2.str().find("unknown key \\\"ep\\\""), std::string::npos);
}

TEST(Serve, MalformedJsonFramesAreAnsweredUnderTheClientsId) {
  // The id is salvageable whenever the frame is a parseable object, even
  // when a later field fails validation — a client correlating strictly by
  // its own ids must still see the error.
  std::istringstream in(
      "{\"id\": \"r9\", \"path\": \"a.inst\", \"eps\": \"fast\"}\n"
      "{\"id\": \"r10\"}\n"
      "{\"id\": \"#3\", \"ep\": 1}\n");  // reserved id: auto id applies
  std::ostringstream out;
  ServeOptions options;
  options.threads = 1;
  const auto stats = engine::serve(SolverRegistry::builtin(), in, out, options);
  EXPECT_EQ(stats.errors, 3u);
  const auto text = out.str();
  const auto r9 = text.find("\"id\": \"r9\"");
  ASSERT_NE(r9, std::string::npos) << text;
  EXPECT_NE(text.find("eps is not a number", r9), std::string::npos);
  const auto r10 = text.find("\"id\": \"r10\"");
  ASSERT_NE(r10, std::string::npos) << text;
  EXPECT_NE(text.find("exactly one of", r10), std::string::npos);
  EXPECT_EQ(text.find("\"id\": \"#3\""), std::string::npos);
  EXPECT_NE(text.find("\"id\": \"#2\""), std::string::npos);  // auto id instead
}

TEST(Serve, RejectsClientIdsInTheReservedForm) {
  Rng rng(45);
  const auto inst = testing::random_uniform_instance(4, 4, 2, 3, 3, rng);
  const std::string text = instance_text(inst);
  const auto dir = fs::temp_directory_path() / "bisched_serve_reserved";
  fs::create_directories(dir);
  const auto path = (dir / "q.inst").string();
  {
    std::ofstream f(path);
    write_instance(f, inst);
  }

  // `#<digits>` is the server's auto-id namespace: both frame forms must be
  // rejected with an error response; `#x7` (not all digits) stays legal.
  std::ostringstream in_text;
  in_text << "{\"id\": \"#7\", \"path\": \"" << path << "\"}\n";
  in_text << "solve " << path << " #12\n";
  in_text << "solve " << path << " #x7\n";
  std::istringstream in(in_text.str());
  std::ostringstream out;
  ServeOptions options;
  options.threads = 1;
  const auto stats = engine::serve(SolverRegistry::builtin(), in, out, options);
  fs::remove_all(dir);

  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.ok, 1u);
  EXPECT_EQ(stats.errors, 2u);
  const auto text_out = out.str();
  EXPECT_NE(text_out.find("reserved #<digits> form"), std::string::npos);
  // The rejected requests are answered under their auto-assigned ids.
  EXPECT_NE(text_out.find("\"id\": \"#0\""), std::string::npos);
  EXPECT_NE(text_out.find("\"id\": \"#1\""), std::string::npos);
  const auto legal = text_out.find("\"id\": \"#x7\"");
  ASSERT_NE(legal, std::string::npos);
  EXPECT_NE(text_out.find("\"status\": \"ok\"", legal), std::string::npos);
}

TEST(Serve, StatsFrameIsAnsweredInlineAndValidated) {
  Rng rng(47);
  const auto inst = testing::random_uniform_instance(4, 4, 2, 3, 3, rng);
  std::ostringstream in_text;
  in_text << "instance a\n" << instance_text(inst);
  in_text << "stats s1\n";
  in_text << "stats one two\n";  // malformed: at most one id
  in_text << "stats #7\n";       // reserved id form: rejected like any frame
  std::istringstream in(in_text.str());
  std::ostringstream out;
  ServeOptions options;
  options.threads = 1;
  const auto stats = engine::serve(SolverRegistry::builtin(), in, out, options);

  EXPECT_EQ(stats.requests, 4u);
  EXPECT_EQ(stats.ok, 2u);  // the solve + the well-formed stats frame
  EXPECT_EQ(stats.errors, 2u);
  const auto text = out.str();
  const auto at = text.find("\"type\": \"stats\"");
  ASSERT_NE(at, std::string::npos) << text;
  EXPECT_NE(text.find("\"id\": \"s1\""), std::string::npos) << text;
  // Structural fields (counter *values* race the pool, so only presence is
  // pinned here; the lockstep subprocess test asserts exact numbers).
  for (const char* key :
       {"\"requests\": ", "\"store\": \"\"", "\"profile_entries\": ",
        "\"profile_hits_disk\": ", "\"profile_hit_rate\": ", "\"result_entries\": ",
        "\"result_hits_memory\": ", "\"result_evictions\": ", "\"result_hit_rate\": "}) {
    EXPECT_NE(text.find(key), std::string::npos) << key;
  }
  // And it is one parseable flat JSON line, like every other response.
  const auto open_brace = text.rfind('{', at);
  const std::string line = text.substr(open_brace, text.find('\n', at) - open_brace);
  std::string parse_error;
  EXPECT_TRUE(parse_flat_json_object(line, &parse_error).has_value())
      << parse_error << " in " << line;
  EXPECT_NE(text.find("stats takes at most one id"), std::string::npos);
  EXPECT_NE(text.find("reserved #<digits> form"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Unix-socket transport: one in-process Server, a listener thread, and two
// concurrent raw-socket clients — the multi-client proof the Transport
// abstraction exists for.

TEST(ServeUnix, TwoConcurrentClientsShareOneResidentServer) {
  Rng rng(46);
  const auto inst = testing::random_uniform_instance(5, 5, 2, 4, 3, rng);
  const std::string text = instance_text(inst);

  const auto dir = fs::temp_directory_path() / "bisched_serve_unix";
  fs::create_directories(dir);
  const std::string socket_path = (dir / "serve.sock").string();

  engine::ServeStats stats;
  std::string serve_error;
  ServeOptions options;
  options.threads = 1;
  options.stable_output = true;
  std::thread server([&] {
    stats = engine::serve_unix(SolverRegistry::builtin(), socket_path, options,
                               &serve_error);
  });

  // Wait for the socket to exist, then for connects to succeed.
  const auto connect_client = [&] {
    for (int attempt = 0; attempt < 200; ++attempt) {
      std::string error;
      const int fd = engine::unix_connect(socket_path, &error);
      if (fd >= 0) return fd;
      ::usleep(10'000);
    }
    return -1;
  };

  // Both clients connect BEFORE either sends — the sessions are
  // demonstrably concurrent, not serialized accept-handle-accept.
  const int c1 = connect_client();
  const int c2 = connect_client();
  ASSERT_GE(c1, 0) << serve_error;
  ASSERT_GE(c2, 0) << serve_error;

  const auto talk = [&](int fd, const std::string& id) {
    const std::string frame = "instance " + id + "\n" + text;
    size_t off = 0;
    while (off < frame.size()) {
      const ssize_t n = ::write(fd, frame.data() + off, frame.size() - off);
      ASSERT_GT(n, 0);
      off += static_cast<size_t>(n);
    }
    ::shutdown(fd, SHUT_WR);  // EOF: the session drains and closes
    std::string response;
    char c = 0;
    while (::read(fd, &c, 1) == 1) response += c;
    ::close(fd);
    EXPECT_NE(response.find("\"id\": \"" + id + "\""), std::string::npos) << response;
    EXPECT_NE(response.find("\"status\": \"ok\""), std::string::npos) << response;
    EXPECT_NE(response.find("\"v\": 1"), std::string::npos) << response;
  };
  std::thread t1([&] { talk(c1, "client-one"); });
  std::thread t2([&] { talk(c2, "client-two"); });
  t1.join();
  t2.join();

  // An idle client that holds its connection open must NOT be able to hang
  // shutdown: the server interrupts still-connected sessions once the
  // listener stops, drains, and returns.
  const int idle = connect_client();
  ASSERT_GE(idle, 0);

  // Another client shuts the listener down; serve_unix returns even though
  // `idle` never sent a byte and never disconnected.
  const int c3 = connect_client();
  ASSERT_GE(c3, 0);
  const char* bye = "shutdown\n";
  ASSERT_EQ(::write(c3, bye, strlen(bye)), static_cast<ssize_t>(strlen(bye)));
  ::close(c3);
  server.join();
  ::close(idle);
  fs::remove_all(dir);

  EXPECT_TRUE(serve_error.empty()) << serve_error;
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.ok, 2u);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.sessions, 4u);  // two talkers + the idle holdout + shutdown
  // One resident cache across clients: the second identical instance probes warm.
  EXPECT_EQ(stats.cache.hits + stats.cache.misses, 2u);
  EXPECT_EQ(stats.cache.hits, 1u);
}

// ---------------------------------------------------------------------------
// TCP transport: the same session machinery over an AF_INET listener, plus
// the no-auth guard (non-loopback binds are refused without allow_remote).

TEST(ServeTcp, LoopbackListenerServesAndPublicBindsNeedAllowRemote) {
  Rng rng(48);
  const auto inst = testing::random_uniform_instance(4, 4, 2, 3, 3, rng);
  const std::string text = instance_text(inst);

  std::string error;
  auto listener = engine::TcpListener::open("127.0.0.1", /*port=*/0,
                                            /*allow_remote=*/false, &error);
  ASSERT_NE(listener, nullptr) << error;
  const int port = listener->port();
  ASSERT_GT(port, 0);  // port 0 resolved to the kernel's pick
  EXPECT_EQ(listener->endpoint(), "tcp:127.0.0.1:" + std::to_string(port));

  engine::ServeStats stats;
  std::string serve_error;
  ServeOptions options;
  options.threads = 1;
  options.stable_output = true;
  std::thread server([&] {
    stats = engine::serve_listener(SolverRegistry::builtin(), *listener, options,
                                   &serve_error);
  });

  const auto connect_client = [&] {
    for (int attempt = 0; attempt < 200; ++attempt) {
      std::string connect_error;
      const int fd = engine::tcp_connect("127.0.0.1", port, &connect_error);
      if (fd >= 0) return fd;
      ::usleep(10'000);
    }
    return -1;
  };
  const int c1 = connect_client();
  ASSERT_GE(c1, 0);
  const std::string frame = "instance over-tcp\n" + text;
  size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::write(c1, frame.data() + off, frame.size() - off);
    ASSERT_GT(n, 0);
    off += static_cast<size_t>(n);
  }
  ::shutdown(c1, SHUT_WR);
  std::string response;
  char c = 0;
  while (::read(c1, &c, 1) == 1) response += c;
  ::close(c1);
  EXPECT_NE(response.find("\"id\": \"over-tcp\""), std::string::npos) << response;
  EXPECT_NE(response.find("\"status\": \"ok\""), std::string::npos) << response;

  const int c2 = connect_client();
  ASSERT_GE(c2, 0);
  const char* bye = "shutdown\n";
  ASSERT_EQ(::write(c2, bye, strlen(bye)), static_cast<ssize_t>(strlen(bye)));
  ::close(c2);
  server.join();
  EXPECT_TRUE(serve_error.empty()) << serve_error;
  EXPECT_EQ(stats.ok, 1u);

  // The no-auth guard: a wildcard bind is refused...
  EXPECT_EQ(engine::TcpListener::open("0.0.0.0", 0, /*allow_remote=*/false, &error),
            nullptr);
  EXPECT_NE(error.find("--allow-remote"), std::string::npos) << error;
  // ...and allowed only with the explicit opt-in.
  auto exposed = engine::TcpListener::open("0.0.0.0", 0, /*allow_remote=*/true, &error);
  EXPECT_NE(exposed, nullptr) << error;
}

// ---------------------------------------------------------------------------
// The auth gate: with a configured token, `auth TOKEN` must be the first
// frame. A bad token or a pre-auth frame gets exactly one error line and the
// session closes; a good token is acked silently by serving the next frame.

TEST(ServeAuth, GateClosesUnauthedSessionsAndAdmitsTheRightToken) {
  Rng rng(52);
  const auto inst = testing::random_uniform_instance(4, 4, 2, 3, 3, rng);
  const std::string text = instance_text(inst);

  ServeOptions options;
  options.threads = 1;
  options.stable_output = true;
  options.auth_token = "sesame";

  const auto one_session = [&](const std::string& input) {
    std::istringstream in(input);
    std::ostringstream out;
    const auto stats = engine::serve(SolverRegistry::builtin(), in, out, options);
    return std::make_pair(stats, out.str());
  };

  // A pre-auth solve: one error line, then the session is CLOSED — the
  // well-formed solve queued behind it is never read.
  {
    const auto [stats, out] = one_session("instance sneak\n" + text +
                                          "instance sneak2\n" + text + "quit\n");
    const auto lines = lines_of(out);
    ASSERT_EQ(lines.size(), 1u) << out;
    EXPECT_NE(lines[0].find("auth required"), std::string::npos) << out;
    EXPECT_NE(lines[0].find("\"status\": \"error\""), std::string::npos) << out;
    EXPECT_EQ(stats.ok, 0u);
    EXPECT_EQ(stats.errors, 1u);
  }

  // A bad token (tokens are case-exact): same one-line contract.
  {
    const auto [stats, out] =
        one_session("auth SESAME\ninstance x\n" + text + "quit\n");
    const auto lines = lines_of(out);
    ASSERT_EQ(lines.size(), 1u) << out;
    EXPECT_NE(lines[0].find("auth failed: bad token"), std::string::npos) << out;
    EXPECT_EQ(stats.ok, 0u);
    EXPECT_EQ(stats.errors, 1u);
  }

  // The right token: the auth frame itself produces NO response line; the
  // ack is the next frame being served normally.
  {
    const auto [stats, out] =
        one_session("auth sesame\ninstance good\n" + text + "quit\n");
    const auto lines = lines_of(out);
    ASSERT_EQ(lines.size(), 1u) << out;
    EXPECT_NE(lines[0].find("\"id\": \"good\""), std::string::npos) << out;
    EXPECT_NE(lines[0].find("\"status\": \"ok\""), std::string::npos) << out;
    EXPECT_EQ(stats.ok, 1u);
    EXPECT_EQ(stats.errors, 0u);
    EXPECT_EQ(stats.auth_frames, 1u);
  }

  // No configured token: an auth frame is counted and ignored, not an error.
  {
    ServeOptions open = options;
    open.auth_token.clear();
    std::istringstream in("auth whatever\ninstance open\n" + text + "quit\n");
    std::ostringstream out;
    const auto stats = engine::serve(SolverRegistry::builtin(), in, out, open);
    EXPECT_EQ(stats.ok, 1u);
    EXPECT_EQ(stats.errors, 0u);
    EXPECT_EQ(stats.auth_frames, 1u);
    EXPECT_NE(out.str().find("\"status\": \"ok\""), std::string::npos) << out.str();
  }
}

// ---------------------------------------------------------------------------
// Per-session quota: with session_max_inflight=1 and the worker stalled by
// fault injection, the second frame arrives while the first is still in
// flight and is refused inline with a structured over-quota error — the
// session stays open and the first solve still completes.

TEST(ServeQuota, ExcessInflightFrameIsRefusedInlineWithOverQuota) {
  Rng rng(53);
  const auto inst = testing::random_uniform_instance(4, 4, 2, 3, 3, rng);
  const std::string text = instance_text(inst);

  ASSERT_EQ(::setenv("BISCHED_FAULT", "stall-ms:200", 1), 0);
  engine::fault::refresh_from_env();

  ServeOptions options;
  options.threads = 1;
  options.stable_output = true;
  options.session_max_inflight = 1;

  std::istringstream in("instance slow\n" + text + "instance greedy\n" + text +
                        "quit\n");
  std::ostringstream out;
  const auto stats = engine::serve(SolverRegistry::builtin(), in, out, options);

  ::unsetenv("BISCHED_FAULT");
  engine::fault::refresh_from_env();

  EXPECT_EQ(stats.ok, 1u);
  EXPECT_EQ(stats.errors, 1u);
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 2u) << out.str();
  std::string ok_line;
  std::string quota_line;
  for (const auto& line : lines) {
    if (line.find("over-quota") != std::string::npos) quota_line = line;
    if (line.find("\"status\": \"ok\"") != std::string::npos) ok_line = line;
  }
  ASSERT_FALSE(quota_line.empty()) << out.str();
  ASSERT_FALSE(ok_line.empty()) << out.str();
  EXPECT_NE(quota_line.find("\"id\": \"greedy\""), std::string::npos) << quota_line;
  EXPECT_NE(ok_line.find("\"id\": \"slow\""), std::string::npos) << ok_line;
}

// ---------------------------------------------------------------------------
// A client that vanishes mid-solve costs the server nothing but a failed
// write: SIGPIPE is ignored, so the next client is served by the same
// process instead of the whole server dying on the broken pipe.

TEST(ServeUnix, ClientDisconnectMidSolveLeavesTheServerStanding) {
  Rng rng(54);
  const auto inst = testing::random_uniform_instance(5, 5, 2, 4, 3, rng);
  const std::string text = instance_text(inst);

  // Stall the solve so the response write happens strictly AFTER the ghost
  // client has hung up.
  ASSERT_EQ(::setenv("BISCHED_FAULT", "stall-ms:150", 1), 0);
  engine::fault::refresh_from_env();

  const auto dir = fs::temp_directory_path() / "bisched_serve_hangup";
  fs::create_directories(dir);
  const std::string socket_path = (dir / "serve.sock").string();

  engine::ServeStats stats;
  std::string serve_error;
  ServeOptions options;
  options.threads = 1;
  options.stable_output = true;
  std::thread server([&] {
    stats = engine::serve_unix(SolverRegistry::builtin(), socket_path, options,
                               &serve_error);
  });

  const auto connect_client = [&] {
    for (int attempt = 0; attempt < 200; ++attempt) {
      std::string error;
      const int fd = engine::unix_connect(socket_path, &error);
      if (fd >= 0) return fd;
      ::usleep(10'000);
    }
    return -1;
  };

  // The ghost sends a full solve frame and hangs up without reading a byte.
  const int ghost = connect_client();
  ASSERT_GE(ghost, 0) << serve_error;
  const std::string frame = "instance ghost\n" + text;
  ASSERT_EQ(::write(ghost, frame.data(), frame.size()),
            static_cast<ssize_t>(frame.size()));
  ::close(ghost);

  // Let the stalled solve finish and write into the dead socket.
  ::usleep(400'000);

  // The survivor is served by the SAME process.
  const int fd = connect_client();
  ASSERT_GE(fd, 0);
  const std::string frame2 = "instance survivor\n" + text;
  ASSERT_EQ(::write(fd, frame2.data(), frame2.size()),
            static_cast<ssize_t>(frame2.size()));
  ::shutdown(fd, SHUT_WR);
  std::string response;
  char c = 0;
  while (::read(fd, &c, 1) == 1) response += c;
  ::close(fd);

  ::unsetenv("BISCHED_FAULT");
  engine::fault::refresh_from_env();

  EXPECT_NE(response.find("\"id\": \"survivor\""), std::string::npos) << response;
  EXPECT_NE(response.find("\"status\": \"ok\""), std::string::npos) << response;

  const int bye = connect_client();
  ASSERT_GE(bye, 0);
  const char* msg = "shutdown\n";
  ASSERT_EQ(::write(bye, msg, strlen(msg)), static_cast<ssize_t>(strlen(msg)));
  ::close(bye);
  server.join();
  fs::remove_all(dir);

  EXPECT_TRUE(serve_error.empty()) << serve_error;
  // Both solves executed and counted ok — the ghost's response was counted
  // before its write failed into the closed socket.
  EXPECT_EQ(stats.ok, 2u);
  EXPECT_EQ(stats.errors, 0u);
}

// ---------------------------------------------------------------------------
// Subprocess round trip. BISCHED_CLI_PATH is injected by CMake as the
// absolute path of the bisched_cli target.

#ifdef BISCHED_CLI_PATH

class ServeCliTest : public ::testing::Test {
 protected:
  // Launches `bisched_cli serve --stable --threads=1` with both ends piped.
  void SetUp() override {
    ASSERT_EQ(::pipe(to_child_), 0);
    ASSERT_EQ(::pipe(from_child_), 0);
    child_ = ::fork();
    ASSERT_GE(child_, 0);
    if (child_ == 0) {
      ::dup2(to_child_[0], STDIN_FILENO);
      ::dup2(from_child_[1], STDOUT_FILENO);
      ::close(to_child_[0]);
      ::close(to_child_[1]);
      ::close(from_child_[0]);
      ::close(from_child_[1]);
      ::execl(BISCHED_CLI_PATH, BISCHED_CLI_PATH, "serve", "--stable",
              "--threads=1", static_cast<char*>(nullptr));
      ::_exit(127);  // exec failed
    }
    ::close(to_child_[0]);
    ::close(from_child_[1]);
  }

  void TearDown() override {
    if (to_child_[1] >= 0) ::close(to_child_[1]);
    ::close(from_child_[0]);
    if (child_ > 0) {
      int status = 0;
      ::waitpid(child_, &status, 0);
    }
  }

  void send(const std::string& text) {
    ASSERT_EQ(::write(to_child_[1], text.data(), text.size()),
              static_cast<ssize_t>(text.size()));
  }

  void close_stdin() {
    ::close(to_child_[1]);
    to_child_[1] = -1;
  }

  // Blocks until the child emits one full response line.
  std::string read_line() {
    std::string line;
    char c = 0;
    while (::read(from_child_[0], &c, 1) == 1) {
      if (c == '\n') return line;
      line += c;
    }
    return line;
  }

  int to_child_[2] = {-1, -1};
  int from_child_[2] = {-1, -1};
  pid_t child_ = -1;
};

TEST_F(ServeCliTest, TwoSequentialRequestsOneProcessWarmCacheHit) {
  Rng rng(43);
  const auto inst = testing::random_uniform_instance(5, 5, 2, 4, 3, rng);
  const std::string text = instance_text(inst);

  // Request 1, then *wait for its response* before sending request 2: the
  // response must stream back while the server still holds the connection —
  // a collect-then-write loop would deadlock right here.
  send("instance r1\n" + text);
  const std::string first = read_line();
  ASSERT_NE(first.find("\"id\": \"r1\""), std::string::npos) << first;
  EXPECT_NE(first.find("\"status\": \"ok\""), std::string::npos) << first;
  EXPECT_NE(first.find("\"cache\": \"miss\""), std::string::npos) << first;

  // Request 2: the same instance again. One process, same registry + cache:
  // the probe must be served from the warm cache.
  send("instance r2\n" + text);
  const std::string second = read_line();
  ASSERT_NE(second.find("\"id\": \"r2\""), std::string::npos) << second;
  EXPECT_NE(second.find("\"status\": \"ok\""), std::string::npos) << second;
  EXPECT_NE(second.find("\"cache\": \"hit-memory\""), std::string::npos) << second;

  // Same content -> byte-identical result fields apart from id, seq, and
  // the cache provenances (both the probe and the solve were served warm the
  // second time).
  const auto strip = [](std::string line) {
    const auto seq = line.find("\"seq\"");
    const auto comma = line.find(',', seq);
    line.erase(0, comma);  // drops {"id": ..., "seq": N
    const auto replace = [&line](const std::string& from, const std::string& to) {
      const auto at = line.find(from);
      if (at != std::string::npos) line.replace(at, from.size(), to);
    };
    replace("\"solve_cache\": \"hit-memory\"", "\"solve_cache\": \"miss\"");
    replace("\"cache\": \"hit-memory\"", "\"cache\": \"miss\"");
    return line;
  };
  EXPECT_EQ(strip(first), strip(second));

  close_stdin();  // EOF: the server drains and exits
}

TEST_F(ServeCliTest, StatsFrameReportsExactCountersInLockstep) {
  Rng rng(49);
  const auto inst = testing::random_uniform_instance(5, 5, 2, 4, 3, rng);
  const std::string text = instance_text(inst);
  send("instance r1\n" + text);
  (void)read_line();
  send("instance r2\n" + text);
  (void)read_line();
  // Both responses are already streamed back, so every counter the stats
  // frame reports is settled — exact values, no pool race.
  send("stats s\n");
  const std::string stats = read_line();
  EXPECT_NE(stats.find("\"type\": \"stats\""), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"id\": \"s\""), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"requests\": 3"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"ok\": 2"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"profile_hits_memory\": 1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"result_hits_memory\": 1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"result_hit_rate\": 0.5"), std::string::npos) << stats;
  close_stdin();
}

#endif  // BISCHED_CLI_PATH

}  // namespace
}  // namespace bisched

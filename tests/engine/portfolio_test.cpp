#include "engine/portfolio.hpp"

#include <gtest/gtest.h>

#include <chrono>

#include "core/exact_bb.hpp"
#include "core/r2_algorithms.hpp"
#include "random/generators.hpp"
#include "sched/schedule.hpp"
#include "testing_util.hpp"
#include "util/prng.hpp"
#include "util/timer.hpp"

namespace bisched {
namespace {

using engine::SolveOptions;
using engine::SolverRegistry;

TEST(Portfolio, AutoMatchesExactOracleOnSmallUniformInstances) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const auto inst = testing::random_uniform_instance(4, 4, 3, 6, 4, rng);
    const auto result = engine::solve_auto(SolverRegistry::builtin(), inst, {});
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(validate(inst, result.schedule), ScheduleStatus::kValid);
    EXPECT_EQ(makespan(inst, result.schedule), result.cmax);
    // n = 8 <= 64: an exact solver is applicable, so auto must be optimal.
    const auto oracle = exact_uniform_bb(inst);
    ASSERT_TRUE(oracle.feasible);
    EXPECT_EQ(result.cmax, oracle.cmax);
  }
}

TEST(Portfolio, AutoPicksAlg1WhenExactSolversAreOutOfReach) {
  Rng rng(12);
  // 100 jobs on 3 machines: beyond the B&B cap, not Q2, not unit-complete-
  // bipartite — the strongest remaining guarantee is Algorithm 1's sqrt.
  const auto inst = testing::random_uniform_instance(50, 50, 3, 5, 4, rng);
  const auto result = engine::solve_auto(SolverRegistry::builtin(), inst, {});
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.solver, "alg1");
  EXPECT_EQ(validate(inst, result.schedule), ScheduleStatus::kValid);
}

TEST(Portfolio, AutoSolvesR2ExactlyWithinDpBudget) {
  Rng rng(13);
  const auto inst = testing::random_r2_instance(15, 15, 20, rng);
  const auto result = engine::solve_auto(SolverRegistry::builtin(), inst, {});
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.solver, "r2exact");
  EXPECT_EQ(validate(inst, result.schedule), ScheduleStatus::kValid);
  const auto oracle = r2_exact_bipartite(inst);
  EXPECT_EQ(result.cmax, Rational(oracle.cmax));
}

TEST(Portfolio, RunAllNeverLosesToAnySingleSolver) {
  Rng rng(14);
  const auto inst = testing::random_r2_instance(10, 10, 15, rng);
  SolveOptions run_all;
  run_all.run_all = true;
  const auto best = engine::solve_auto(SolverRegistry::builtin(), inst, run_all);
  ASSERT_TRUE(best.ok) << best.error;
  EXPECT_GE(best.solvers_tried, 2);
  const auto two_approx =
      engine::solve_named(SolverRegistry::builtin(), "alg4", inst, {});
  ASSERT_TRUE(two_approx.ok);
  EXPECT_TRUE(best.cmax <= two_approx.cmax);
}

TEST(Portfolio, NamedSolverChecksApplicabilityInsteadOfAborting) {
  Rng rng(15);
  const auto r2 = testing::random_r2_instance(5, 5, 10, rng);
  const auto wrong_model =
      engine::solve_named(SolverRegistry::builtin(), "alg1", r2, {});
  EXPECT_FALSE(wrong_model.ok);
  EXPECT_NE(wrong_model.error.find("not applicable"), std::string::npos);

  const auto unknown = engine::solve_named(SolverRegistry::builtin(), "nope", r2, {});
  EXPECT_FALSE(unknown.ok);
  EXPECT_NE(unknown.error.find("unknown solver"), std::string::npos);

  const auto uniform = testing::random_uniform_instance(3, 3, 3, 4, 3, rng);
  const auto q2_on_q3 =
      engine::solve_named(SolverRegistry::builtin(), "q2exact", uniform, {});
  EXPECT_FALSE(q2_on_q3.ok);

  SolveOptions bad_eps;
  bad_eps.eps = 0;
  const auto eps = engine::solve_named(SolverRegistry::builtin(), "alg5", r2, bad_eps);
  EXPECT_FALSE(eps.ok);
  EXPECT_NE(eps.error.find("eps"), std::string::npos);
}

TEST(Portfolio, InfeasibleInstanceReportsFailureNotAbort) {
  Graph edge(2);
  edge.add_edge(0, 1);
  const auto inst = make_uniform_instance({1, 1}, {1}, std::move(edge));
  const auto result = engine::solve_auto(SolverRegistry::builtin(), inst, {});
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.error.empty());
}

TEST(Portfolio, ExpiredDeadlineFailsFastInsteadOfStartingTheSolver) {
  Rng rng(16);
  const auto inst = testing::random_uniform_instance(6, 6, 3, 5, 3, rng);
  SolveOptions options;
  options.deadline = std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  const auto result = engine::solve_named(SolverRegistry::builtin(), "exact", inst, options);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("deadline"), std::string::npos);
}

TEST(Portfolio, DeadlineBindsInsideTheBranchAndBound) {
  // 48 unit jobs, no conflicts, 3 equal machines: the B&B explores a huge
  // symmetric space (its 20M-node engine budget runs for seconds), so only
  // an in-solver deadline can stop it quickly.
  const auto inst =
      make_uniform_instance(std::vector<std::int64_t>(48, 1), {1, 1, 1}, Graph(48));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(30);
  const auto result = exact_uniform_bb(inst, 0, deadline);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - deadline);
  // Well under the seconds the full search needs (generous bound: CI noise).
  EXPECT_LT(elapsed.count(), 2000);
  // Aborted, or solved-to-optimality if this machine got lucky — never hung.
  if (!result.feasible) {
    EXPECT_TRUE(result.aborted);
  }
}

TEST(Portfolio, RunAllBudgetDerivesPerSolverDeadlines) {
  // On a conflict-free instance every uniform solver is applicable; with a
  // near-zero budget the first solver starts (contract) but its deadline is
  // already spent, so the whole run returns quickly either way.
  const auto inst =
      make_uniform_instance(std::vector<std::int64_t>(48, 1), {2, 1, 1}, Graph(48));
  SolveOptions options;
  options.run_all = true;
  options.budget_ms = 20;
  Timer timer;
  const auto result = engine::solve_auto(SolverRegistry::builtin(), inst, options);
  EXPECT_LT(timer.millis(), 5000.0);
  // The strongest eligible solver is the deadline-aware B&B; whether it
  // finished or aborted, the budget must not have been ignored.
  if (result.ok) {
    EXPECT_EQ(validate(inst, result.schedule), ScheduleStatus::kValid);
  } else {
    EXPECT_NE(result.error.find("failed"), std::string::npos);
  }
}

TEST(Portfolio, UnitCompleteBipartiteRoutesToPolynomialExactSolver) {
  // K_{8,12} with unit jobs on 4 machines: both kab and the B&B oracle are
  // applicable exact solvers, but kab (polynomial, cannot fail) must win the
  // tie against the may_fail branch-and-bound.
  const auto inst = make_uniform_instance(std::vector<std::int64_t>(20, 1), {3, 2, 2, 1},
                                          complete_bipartite(8, 12));
  const auto result = engine::solve_auto(SolverRegistry::builtin(), inst, {});
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.solver, "kab");
  EXPECT_EQ(validate(inst, result.schedule), ScheduleStatus::kValid);
  const auto oracle = exact_uniform_bb(inst);
  ASSERT_TRUE(oracle.feasible);
  EXPECT_EQ(result.cmax, oracle.cmax);
}

}  // namespace
}  // namespace bisched

// Fleet tests: the routing primitives (hash ring, health tracker), the
// fault-injection spec parser, and the acceptance path — a subprocess
// `bisched_cli route` over two supervised backends with BISCHED_FAULT
// crashing one mid-batch, where every client request must still be answered
// (retried/failed-over invisibly) and the responses must match a
// single-backend run byte-for-byte modulo placement provenance.
#include "engine/fleet/hash_ring.hpp"

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "engine/fault.hpp"
#include "engine/fleet/health.hpp"
#include "io/format.hpp"
#include "sched/instance_hash.hpp"
#include "testing_util.hpp"
#include "util/prng.hpp"

namespace bisched {
namespace {

namespace fs = std::filesystem;

using engine::fleet::HashRing;
using engine::fleet::HealthTracker;

// ------------------------------------------------------------- hash ring ---

TEST(HashRing, OwnerIsDeterministicAndCandidatesPermuteAllBackends) {
  const HashRing ring(4);
  const HashRing twin(4);
  for (std::uint64_t i = 0; i < 256; ++i) {
    const std::uint64_t key = i * 0x9E3779B97F4A7C15ull;
    // Placement is a pure function of (key, backend count): a router restart
    // (or a second router over the same fleet) routes identically.
    EXPECT_EQ(ring.owner(key), twin.owner(key));
    const auto candidates = ring.candidates(key);
    ASSERT_EQ(candidates.size(), 4u);
    EXPECT_EQ(candidates.front(), ring.owner(key));
    const std::set<std::size_t> unique(candidates.begin(), candidates.end());
    EXPECT_EQ(unique.size(), 4u);  // every backend exactly once
  }
}

TEST(HashRing, VirtualNodesKeepTheSlicesRoughlyBalanced) {
  const HashRing ring(4);
  std::vector<int> owned(4, 0);
  const int kKeys = 10000;
  for (int i = 0; i < kKeys; ++i) {
    owned[ring.owner(static_cast<std::uint64_t>(i) * 0x9E3779B97F4A7C15ull)]++;
  }
  for (int b = 0; b < 4; ++b) {
    // Perfect balance is 25%; 64 virtual nodes keep every slice within a
    // loose band (a single-point-per-backend ring routinely lands below 5%).
    EXPECT_GT(owned[b], kKeys / 10) << "backend " << b << " owns too little";
    EXPECT_LT(owned[b], kKeys / 2) << "backend " << b << " owns too much";
  }
}

TEST(HashRing, SingleBackendOwnsEverything) {
  const HashRing ring(1);
  for (std::uint64_t key : {0ull, 1ull, 0xFFFFFFFFFFFFFFFFull}) {
    EXPECT_EQ(ring.owner(key), 0u);
    EXPECT_EQ(ring.candidates(key), std::vector<std::size_t>{0});
  }
}

// ---------------------------------------------------------------- health ---

TEST(HealthTracker, DemotesAfterConsecutiveFailuresAndReadmitsOnSuccess) {
  HealthTracker health(2, /*unhealthy_after=*/3);
  EXPECT_TRUE(health.healthy(0));
  EXPECT_EQ(health.healthy_count(), 2u);

  // One lost race does not eject a backend...
  health.record_failure(0);
  health.record_failure(0);
  EXPECT_TRUE(health.healthy(0));
  // ...a success wipes the streak...
  health.record_success(0);
  health.record_failure(0);
  health.record_failure(0);
  EXPECT_TRUE(health.healthy(0));
  // ...and only the full consecutive run demotes.
  health.record_failure(0);
  EXPECT_FALSE(health.healthy(0));
  EXPECT_TRUE(health.healthy(1));
  EXPECT_EQ(health.healthy_count(), 1u);

  // Recovery needs no quarantine: one answered probe re-admits.
  health.record_success(0);
  EXPECT_TRUE(health.healthy(0));

  // reset() = the supervisor respawned the slot: clean record.
  health.record_failure(1);
  health.record_failure(1);
  health.record_failure(1);
  EXPECT_FALSE(health.healthy(1));
  health.reset(1);
  EXPECT_TRUE(health.healthy(1));
}

// ----------------------------------------------------------------- fault ---

// Restores the fault module to inert whatever a test did — a leaked armed
// plan would make every later in-process serve test misbehave.
struct FaultEnvGuard {
  ~FaultEnvGuard() {
    ::unsetenv("BISCHED_FAULT");
    ::unsetenv("BISCHED_BACKEND_INDEX");
    engine::fault::refresh_from_env();
  }
};

TEST(Fault, SpecParsingScopingAndDropAction) {
  FaultEnvGuard guard;

  // Unset: every hook is a no-op.
  ::unsetenv("BISCHED_FAULT");
  engine::fault::refresh_from_env();
  EXPECT_FALSE(engine::fault::active());
  EXPECT_EQ(engine::fault::on_solve_frame(), engine::fault::Action::kNone);

  // drop-after:1 — the first solve frame passes, the second drops.
  ::setenv("BISCHED_FAULT", "drop-after:1", 1);
  engine::fault::refresh_from_env();
  EXPECT_TRUE(engine::fault::active());
  EXPECT_EQ(engine::fault::on_solve_frame(), engine::fault::Action::kNone);
  EXPECT_EQ(engine::fault::on_solve_frame(),
            engine::fault::Action::kDropConnection);

  // refresh resets the counters, not just the spec.
  engine::fault::refresh_from_env();
  EXPECT_EQ(engine::fault::on_solve_frame(), engine::fault::Action::kNone);

  // backend=<i> scoping: inert unless BISCHED_BACKEND_INDEX matches, so one
  // spec in a router's environment can target one backend of its fleet.
  ::setenv("BISCHED_FAULT", "backend=2;drop-after:0", 1);
  ::unsetenv("BISCHED_BACKEND_INDEX");
  engine::fault::refresh_from_env();
  EXPECT_FALSE(engine::fault::active());
  EXPECT_EQ(engine::fault::on_solve_frame(), engine::fault::Action::kNone);
  ::setenv("BISCHED_BACKEND_INDEX", "1", 1);
  engine::fault::refresh_from_env();
  EXPECT_FALSE(engine::fault::active());
  ::setenv("BISCHED_BACKEND_INDEX", "2", 1);
  engine::fault::refresh_from_env();
  EXPECT_TRUE(engine::fault::active());
  EXPECT_EQ(engine::fault::on_solve_frame(),
            engine::fault::Action::kDropConnection);

  // A malformed token disarms the whole spec (a typo'd fault must not half
  // apply), and stall-ms actually stalls.
  ::setenv("BISCHED_FAULT", "drop-after:oops;stall-ms:50", 1);
  ::unsetenv("BISCHED_BACKEND_INDEX");
  engine::fault::refresh_from_env();
  EXPECT_FALSE(engine::fault::active());
  ::setenv("BISCHED_FAULT", "stall-ms:50", 1);
  engine::fault::refresh_from_env();
  const auto t0 = std::chrono::steady_clock::now();
  engine::fault::maybe_stall();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  EXPECT_GE(elapsed, 45);
}

// ----------------------------------------------------- acceptance (route) ---
// Subprocess `bisched_cli route`: BISCHED_CLI_PATH is injected by CMake.

#ifdef BISCHED_CLI_PATH

struct RouteRun {
  std::string out;
  int exit_code = -1;
};

// Runs `bisched_cli route <args>` with `input` on stdin, `fault` (when
// non-null) as BISCHED_FAULT in the child only, and returns its stdout.
RouteRun run_route(const std::vector<std::string>& args, const char* fault,
                   const std::string& input) {
  RouteRun run;
  int to_child[2] = {-1, -1};
  int from_child[2] = {-1, -1};
  if (::pipe(to_child) != 0 || ::pipe(from_child) != 0) return run;
  const pid_t pid = ::fork();
  if (pid < 0) return run;
  if (pid == 0) {
    ::dup2(to_child[0], STDIN_FILENO);
    ::dup2(from_child[1], STDOUT_FILENO);
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    if (fault != nullptr) {
      ::setenv("BISCHED_FAULT", fault, 1);
    } else {
      ::unsetenv("BISCHED_FAULT");
    }
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(BISCHED_CLI_PATH));
    argv.push_back(const_cast<char*>("route"));
    for (const std::string& arg : args) argv.push_back(const_cast<char*>(arg.c_str()));
    argv.push_back(nullptr);
    ::execv(BISCHED_CLI_PATH, argv.data());
    ::_exit(127);
  }
  ::close(to_child[0]);
  ::close(from_child[1]);
  size_t off = 0;
  while (off < input.size()) {
    const ssize_t n = ::write(to_child[1], input.data() + off, input.size() - off);
    if (n <= 0) break;
    off += static_cast<size_t>(n);
  }
  ::close(to_child[1]);
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::read(from_child[0], buf, sizeof(buf))) > 0) {
    run.out.append(buf, static_cast<size_t>(n));
  }
  ::close(from_child[0]);
  int status = 0;
  ::waitpid(pid, &status, 0);
  run.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return run;
}

std::map<std::string, std::string> lines_by_id(const std::string& out) {
  std::map<std::string, std::string> by_id;
  std::istringstream stream(out);
  std::string line;
  while (std::getline(stream, line)) {
    const auto at = line.find("\"id\": \"");
    if (at == std::string::npos) continue;
    const auto start = at + 7;
    const auto end = line.find('"', start);
    by_id[line.substr(start, end - start)] = line;
  }
  return by_id;
}

// Strips the fields that legitimately differ between a 1-backend and a
// faulted 2-backend run: admission order (seq) and cache provenance (which
// backend's warmth served the repeat). Everything else must match exactly.
std::string placement_normalized(std::string line) {
  const auto strip_value = [&line](const std::string& key) {
    const auto at = line.find(key);
    if (at == std::string::npos) return;
    const auto start = at + key.size();
    auto end = start;
    while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
    line.replace(start, end - start, "X");
  };
  strip_value("\"seq\": ");
  strip_value("\"cache\": ");
  strip_value("\"solve_cache\": ");
  return line;
}

long json_long(const std::string& text, const std::string& key) {
  const auto at = text.find(key);
  if (at == std::string::npos) return -1;
  return std::atol(text.c_str() + at + key.size());
}

TEST(FleetCli, CrashMidBatchFailsOverInvisiblyAndMatchesSingleBackendRun) {
  // Build a work set whose placement is known in advance: at least four
  // instances homed on backend 0 (so the crash-after:2 fault actually
  // trips mid-batch) and at least two on backend 1.
  const HashRing ring(2);
  Rng rng(77);
  std::vector<UniformInstance> instances;
  int homed0 = 0;
  int homed1 = 0;
  for (int guard = 0; (homed0 < 4 || homed1 < 2) && guard < 1000; ++guard) {
    auto inst = testing::random_uniform_instance(4, 4, 2, 3, 3, rng);
    const std::size_t owner = ring.owner(instance_hash(inst));
    if (owner == 0 && homed0 >= 4) continue;
    if (owner == 1 && homed1 >= 2) continue;
    (owner == 0 ? homed0 : homed1)++;
    instances.push_back(std::move(inst));
  }
  ASSERT_EQ(homed0, 4);
  ASSERT_EQ(homed1, 2);

  const auto dir = fs::temp_directory_path() / "bisched_fleet_accept";
  fs::remove_all(dir);
  fs::create_directories(dir);
  std::vector<std::string> paths;
  for (std::size_t i = 0; i < instances.size(); ++i) {
    paths.push_back((dir / ("i" + std::to_string(i) + ".inst")).string());
    std::ofstream f(paths.back());
    write_instance(f, instances[i]);
  }

  // Two passes over the set (the repeat pass is warm traffic), then the
  // router's own stats + metrics, then quit.
  std::ostringstream frames;
  int id = 0;
  for (int rep = 0; rep < 2; ++rep) {
    for (const std::string& path : paths) {
      frames << "solve " << path << " q" << id++ << "\n";
    }
  }
  std::ostringstream fleet_input;
  fleet_input << frames.str() << "stats s\nmetrics m\nquit\n";

  // --route-threads=1: sequential routing, so the fault's frame count maps
  // deterministically onto the request order. --max-inflight=1 serializes
  // admission completely: every solve (and its retries) settles before the
  // trailing stats/metrics probes are even read, so the counters they report
  // are exact, not a point-in-time race.
  const std::vector<std::string> fleet_args = {"--fleet=2", "--stable",
                                               "--route-threads=1",
                                               "--max-inflight=1",
                                               "--deadline-ms=20000"};
  const RouteRun faulted =
      run_route(fleet_args, "backend=0;crash-after:2", fleet_input.str());
  // Exit 0 = the router itself counted zero client-visible errors.
  EXPECT_EQ(faulted.exit_code, 0) << faulted.out;

  const auto responses = lines_by_id(faulted.out);
  for (int i = 0; i < id; ++i) {
    const auto at = responses.find("q" + std::to_string(i));
    ASSERT_NE(at, responses.end()) << "missing response q" << i;
    EXPECT_NE(at->second.find("\"status\": \"ok\""), std::string::npos)
        << at->second;
  }

  // The crash was absorbed, not hidden: the router's stats admit the
  // retries, and the Prometheus scrape carries a nonzero retry counter.
  const auto stats = responses.find("s");
  ASSERT_NE(stats, responses.end());
  EXPECT_NE(stats->second.find("\"role\": \"router\""), std::string::npos);
  EXPECT_GT(json_long(stats->second, "\"retries\": "), 0) << stats->second;
  EXPECT_EQ(json_long(stats->second, "\"degraded\": "), 0) << stats->second;
  const auto metrics = responses.find("m");
  ASSERT_NE(metrics, responses.end());
  // The exposition rides JSON-escaped in "body": samples appear as
  // `\nNAME VALUE`. The retry counter must be present and nonzero.
  const auto retries_at = metrics->second.find("\\nbisched_fleet_retries_total ");
  ASSERT_NE(retries_at, std::string::npos) << metrics->second;
  EXPECT_GT(std::atol(metrics->second.c_str() + retries_at + 30), 0);
  EXPECT_NE(metrics->second.find("bisched_fleet_backends"), std::string::npos);

  // Control run: one backend, no fault. Same requests must produce the same
  // responses modulo seq and cache provenance — failover changed WHERE a
  // request ran, never its answer.
  const RouteRun single = run_route({"--fleet=1", "--stable", "--route-threads=1"},
                                    nullptr, frames.str() + "quit\n");
  EXPECT_EQ(single.exit_code, 0) << single.out;
  const auto control = lines_by_id(single.out);
  for (int i = 0; i < id; ++i) {
    const std::string key = "q" + std::to_string(i);
    const auto a = responses.find(key);
    const auto b = control.find(key);
    ASSERT_NE(a, responses.end());
    ASSERT_NE(b, control.end());
    EXPECT_EQ(placement_normalized(a->second), placement_normalized(b->second))
        << key;
  }

  fs::remove_all(dir);
}

#endif  // BISCHED_CLI_PATH

}  // namespace
}  // namespace bisched

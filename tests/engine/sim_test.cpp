// Simulator tests: the scenario codec (golden-pinned canonical encoding,
// seed determinism, trace round trips), the in-process driver (cache-warmth
// dynamics must show up in the tier counters), the report renderers, the
// bench-history namespace, and the acceptance path — a subprocess
// `bisched_cli route` fleet with BISCHED_FAULT crashing a backend mid-replay,
// where the driver must complete with zero visible errors while the report
// carries the router's retry/respawn counters.
#include "engine/sim/scenario.hpp"

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/sim/driver.hpp"
#include "engine/sim/report.hpp"
#include "engine/store/bench_history.hpp"
#include "engine/store/cache_store.hpp"
#include "engine/telemetry/metrics.hpp"
#include "engine/transport.hpp"
#include "io/jsonl.hpp"

namespace bisched {
namespace {

namespace fs = std::filesystem;

using engine::sim::DriverOptions;
using engine::sim::DriverResult;
using engine::sim::InProcessEngine;
using engine::sim::Scenario;
using engine::sim::SimEndpoint;
using engine::sim::Trace;

// --------------------------------------------------------- scenario codec ---

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string small_scenario_text() {
  return R"({"v": 1, "scenario": "warmup", "seed": 7}
{"phase": "cold", "arrival": "poisson", "rate_rps": 400, "duration_ms": 150, "family": "gilbert", "n": 8, "machines": 3, "repeat_p": 0}
{"phase": "warm", "arrival": "burst", "burst_size": 12, "burst_every_ms": 30, "duration_ms": 150, "family": "gilbert", "n": 8, "machines": 3, "repeat_p": 0.9}
)";
}

#ifdef BISCHED_GOLDEN_DIR

// The checked-in golden (all three arrival processes, all three instance
// families, per-phase alg/eps overrides) IS the canonical encoding:
// encode(parse(golden)) must reproduce it byte for byte. A diff here means
// the scenario format changed — bump kScenarioVersion and regenerate.
TEST(SimScenario, GoldenCanonicalEncodingIsAFixedPoint) {
  const std::string path =
      std::string(BISCHED_GOLDEN_DIR) + "/sim_scenario_v1.jsonl";
  const std::string golden = read_file(path);
  ASSERT_FALSE(golden.empty()) << "golden file missing: " << path;

  std::string error;
  const auto scenario = engine::sim::parse_scenario(golden, &error);
  ASSERT_TRUE(scenario.has_value()) << error;
  EXPECT_EQ(scenario->name, "golden-mix");
  EXPECT_EQ(scenario->seed, 42u);
  ASSERT_EQ(scenario->phases.size(), 3u);
  EXPECT_EQ(scenario->phases[0].arrival, "poisson");
  EXPECT_EQ(scenario->phases[1].arrival, "burst");
  EXPECT_EQ(scenario->phases[2].arrival, "ramp");
  EXPECT_EQ(scenario->phases[2].mix.family, "r2");
  EXPECT_TRUE(scenario->phases[2].has_eps);

  EXPECT_EQ(engine::sim::encode_scenario(*scenario), golden);
}

#endif  // BISCHED_GOLDEN_DIR

TEST(SimScenario, ParseRejectsMalformedInput) {
  std::string error;
  // Unknown key.
  EXPECT_FALSE(engine::sim::parse_scenario(
                   "{\"v\": 1, \"scenario\": \"x\"}\n"
                   "{\"phase\": \"p\", \"rate_rps\": 5, \"duration_ms\": 100, "
                   "\"bogus\": 1}\n",
                   &error)
                   .has_value());
  EXPECT_NE(error.find("bogus"), std::string::npos) << error;
  // Unknown arrival process.
  EXPECT_FALSE(engine::sim::parse_scenario(
                   "{\"v\": 1, \"scenario\": \"x\"}\n"
                   "{\"phase\": \"p\", \"arrival\": \"warp\", \"rate_rps\": 5, "
                   "\"duration_ms\": 100}\n",
                   &error)
                   .has_value());
  // A phase name that could not be a telemetry label or id prefix.
  EXPECT_FALSE(engine::sim::parse_scenario(
                   "{\"v\": 1, \"scenario\": \"x\"}\n"
                   "{\"phase\": \"a b\", \"rate_rps\": 5, \"duration_ms\": 100}\n",
                   &error)
                   .has_value());
  // Version drift is an error, not a guess.
  EXPECT_FALSE(
      engine::sim::parse_scenario("{\"v\": 2, \"scenario\": \"x\"}\n", &error)
          .has_value());
}

TEST(SimScenario, TraceGenerationIsSeedDeterministic) {
  std::string error;
  const auto scenario = engine::sim::parse_scenario(small_scenario_text(), &error);
  ASSERT_TRUE(scenario.has_value()) << error;

  const auto a = engine::sim::generate_trace(*scenario, 7, &error);
  ASSERT_TRUE(a.has_value()) << error;
  const auto b = engine::sim::generate_trace(*scenario, 7, &error);
  ASSERT_TRUE(b.has_value()) << error;
  ASSERT_FALSE(a->entries.empty());

  // Same seed: byte-identical expansion. Different seed: a different stream.
  EXPECT_EQ(engine::sim::encode_trace(*a), engine::sim::encode_trace(*b));
  const auto c = engine::sim::generate_trace(*scenario, 8, &error);
  ASSERT_TRUE(c.has_value()) << error;
  EXPECT_NE(engine::sim::encode_trace(*a), engine::sim::encode_trace(*c));

  // Send order, phase windows, and the repeat pool all survived expansion.
  std::int64_t last = 0;
  bool any_repeat = false;
  for (const auto& entry : a->entries) {
    EXPECT_GE(entry.t_us, last);
    last = entry.t_us;
    any_repeat = any_repeat || entry.repeat;
    ASSERT_FALSE(entry.instance.empty());
  }
  EXPECT_TRUE(any_repeat) << "repeat_p=0.9 phase drew no repeats";
}

TEST(SimScenario, TraceEncodeDecodeRoundTripsByteIdentically) {
  std::string error;
  const auto scenario = engine::sim::parse_scenario(small_scenario_text(), &error);
  ASSERT_TRUE(scenario.has_value()) << error;
  const auto trace = engine::sim::generate_trace(*scenario, 7, &error);
  ASSERT_TRUE(trace.has_value()) << error;

  const std::string encoded = engine::sim::encode_trace(*trace);
  const auto decoded = engine::sim::decode_trace(encoded, &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(engine::sim::encode_trace(*decoded), encoded);
  EXPECT_EQ(decoded->entries.size(), trace->entries.size());
  EXPECT_EQ(decoded->phases.size(), trace->phases.size());

  EXPECT_FALSE(engine::sim::decode_trace("not a trace\n", &error).has_value());
}

// ------------------------------------------------------- in-process driver ---

TEST(SimDriver, InProcessReplayWarmPhaseHitsTheCache) {
  std::string error;
  const auto scenario = engine::sim::parse_scenario(small_scenario_text(), &error);
  ASSERT_TRUE(scenario.has_value()) << error;
  const auto trace = engine::sim::generate_trace(*scenario, 7, &error);
  ASSERT_TRUE(trace.has_value()) << error;

  engine::WarmState warm;
  engine::telemetry::Registry registry;
  InProcessEngine in_process;
  in_process.registry = &engine::SolverRegistry::builtin();
  in_process.warm = &warm;
  DriverOptions options;
  options.connections = 1;  // sequential: byte-deterministic replay
  options.stable_outputs = true;
  const DriverResult result =
      engine::sim::run_driver(*trace, SimEndpoint{}, options, registry, in_process);
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.samples.size(), trace->entries.size());
  for (const auto& sample : result.samples) {
    EXPECT_TRUE(sample.ok) << sample.output;
    ASSERT_FALSE(sample.output.empty());
  }

  const auto phases = engine::sim::summarize(*trace, result, registry);
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].name, "cold");
  EXPECT_EQ(phases[1].name, "warm");
  EXPECT_EQ(phases[0].errors, 0u);
  EXPECT_EQ(phases[1].errors, 0u);
  EXPECT_EQ(phases[0].requests + phases[1].requests, result.samples.size());
  // The whole point of repeat_p: the warm phase must be served warmer than
  // the cold one (which, with a fresh state, is all misses).
  EXPECT_EQ(phases[0].tier_memory, 0u);
  EXPECT_GT(phases[1].tier_memory, phases[1].requests / 2);
  EXPECT_GT(phases[0].p50_ms, 0);

  // Two sequential replays of one trace produce identical response lines.
  engine::WarmState warm2;
  engine::telemetry::Registry registry2;
  in_process.warm = &warm2;
  const DriverResult again =
      engine::sim::run_driver(*trace, SimEndpoint{}, options, registry2, in_process);
  ASSERT_TRUE(again.ok) << again.error;
  ASSERT_EQ(again.samples.size(), result.samples.size());
  for (std::size_t i = 0; i < result.samples.size(); ++i) {
    EXPECT_EQ(again.samples[i].output, result.samples[i].output) << i;
  }
}

TEST(SimReport, JsonAndHtmlCarryThePhaseRows) {
  std::string error;
  const auto scenario = engine::sim::parse_scenario(small_scenario_text(), &error);
  ASSERT_TRUE(scenario.has_value()) << error;
  const auto trace = engine::sim::generate_trace(*scenario, 7, &error);
  ASSERT_TRUE(trace.has_value()) << error;

  engine::WarmState warm;
  engine::telemetry::Registry registry;
  InProcessEngine in_process;
  in_process.registry = &engine::SolverRegistry::builtin();
  in_process.warm = &warm;
  DriverOptions options;
  options.connections = 2;
  const DriverResult result =
      engine::sim::run_driver(*trace, SimEndpoint{}, options, registry, in_process);
  ASSERT_TRUE(result.ok) << result.error;

  const auto phases = engine::sim::summarize(*trace, result, registry);
  engine::sim::ReportOptions report;
  report.scenario = trace->scenario;
  report.seed = trace->seed;
  report.mode = "in-process";
  report.connections = options.connections;
  report.sla_ms = options.sla_ms;

  const std::string json =
      engine::sim::render_report_json(*trace, result, phases, report);
  EXPECT_NE(json.find("\"bench\": \"sim\""), std::string::npos);
  EXPECT_NE(json.find("\"phase\": \"cold\""), std::string::npos);
  EXPECT_NE(json.find("\"phase\": \"warm\""), std::string::npos);
  EXPECT_NE(json.find("\"phase\": \"total\""), std::string::npos);
  EXPECT_NE(json.find("\"p95_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"sla_miss\""), std::string::npos);
  EXPECT_NE(json.find("\"hit_memory\""), std::string::npos);
  EXPECT_NE(json.find("\"scenario\": \"warmup\""), std::string::npos);
  // The document is the repo's flat-JSON dialect: every row parses.
  std::istringstream lines(json);
  std::string line;
  int rows = 0;
  while (std::getline(lines, line)) {
    if (line.rfind("  {", 0) != 0) continue;
    if (line.back() == ',') line.pop_back();
    ASSERT_TRUE(parse_flat_json_object(line, &error).has_value())
        << error << " in " << line;
    ++rows;
  }
  EXPECT_EQ(rows, 3);  // cold, warm, total

  const std::string html =
      engine::sim::render_report_html(*trace, result, phases, report);
  EXPECT_NE(html.find("<svg"), std::string::npos);
  EXPECT_NE(html.find("Latency over time"), std::string::npos);
  EXPECT_NE(html.find("warmup"), std::string::npos);
  EXPECT_NE(html.find("</html>"), std::string::npos);
}

// ----------------------------------------------------------- bench history ---

TEST(BenchHistory, AppendsAndListsAcrossReopens) {
  const auto dir = fs::temp_directory_path() / "bisched_sim_history";
  fs::remove_all(dir);

  std::string error;
  ASSERT_TRUE(engine::store::append_bench_history_at(
      dir.string(), "sim", "{\"bench\": \"sim\", \"rows\": []}\n", &error))
      << error;
  ASSERT_TRUE(engine::store::append_bench_history_at(
      dir.string(), "hotpaths", "{\"bench\": \"hotpaths\", \"rows\": []}\n",
      &error))
      << error;

  auto store = engine::store::CacheStore::open(dir.string(), &error);
  ASSERT_NE(store, nullptr) << error;
  auto* tier = store->open_namespace(engine::store::bench_history_namespace());
  const auto entries = engine::store::list_bench_history(*tier);
  ASSERT_EQ(entries.size(), 2u);
  // Sorted by key: bench name first.
  EXPECT_EQ(entries[0].bench, "hotpaths");
  EXPECT_EQ(entries[1].bench, "sim");
  EXPECT_GT(entries[0].recorded_ms, 0);
  EXPECT_GT(entries[1].bytes, 0u);
  store.reset();

  fs::remove_all(dir);
}

// ----------------------------------------------------- acceptance (fleet) ---
// Subprocess `bisched_cli route` fleet on a unix socket with a backend that
// BISCHED_FAULT-crashes mid-replay: the driver completes every request with
// zero visible errors, and the report carries the router's own counters.

#ifdef BISCHED_CLI_PATH

TEST(SimCli, FleetReplayAbsorbsABackendCrashInvisibly) {
  const auto dir = fs::temp_directory_path() / "bisched_sim_fleet";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string socket_path = (dir / "route.sock").string();

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Crash backend 0 after 5 solve frames; the supervisor respawns it (with
    // the fault still armed, so it keeps crashing — the router must keep
    // absorbing). Quiet stdio: the socket is the only interface used.
    ::setenv("BISCHED_FAULT", "backend=0;crash-after:5", 1);
    const int null_fd = ::open("/dev/null", O_RDWR);
    ::dup2(null_fd, STDIN_FILENO);
    ::dup2(null_fd, STDOUT_FILENO);
    ::execl(BISCHED_CLI_PATH, BISCHED_CLI_PATH, "route", "--fleet=2", "--stable",
            "--deadline-ms=20000", ("--listen=unix:" + socket_path).c_str(),
            static_cast<char*>(nullptr));
    ::_exit(127);
  }

  // Wait for the listener.
  bool up = false;
  for (int i = 0; i < 500 && !up; ++i) {
    std::string error;
    const int fd = engine::unix_connect(socket_path, &error);
    if (fd >= 0) {
      ::close(fd);
      up = true;
    } else {
      ::usleep(20'000);
    }
  }
  ASSERT_TRUE(up) << "router never started listening";

  std::string error;
  const auto scenario = engine::sim::parse_scenario(small_scenario_text(), &error);
  ASSERT_TRUE(scenario.has_value()) << error;
  const auto trace = engine::sim::generate_trace(*scenario, 7, &error);
  ASSERT_TRUE(trace.has_value()) << error;

  SimEndpoint endpoint;
  endpoint.kind = SimEndpoint::Kind::kUnix;
  endpoint.path = socket_path;
  DriverOptions options;
  options.connections = 2;
  options.timeout_ms = 20000;
  options.max_attempts = 5;
  engine::telemetry::Registry registry;
  const DriverResult result =
      engine::sim::run_driver(*trace, endpoint, options, registry);
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.samples.size(), trace->entries.size());
  // Acceptance: a crashing backend is the ROUTER's problem. Every replayed
  // request succeeds from the driver's point of view.
  for (const auto& sample : result.samples) {
    EXPECT_TRUE(sample.ok) << sample.output;
  }

  // ...and the report admits the crash happened: the scraped stats frame
  // carries nonzero retries (and at least one respawn).
  ASSERT_FALSE(result.server_stats.empty());
  EXPECT_EQ(result.server_stats.at("role"), "router");
  EXPECT_GT(std::atol(result.server_stats.at("retries").c_str()), 0);
  EXPECT_GT(std::atol(result.server_stats.at("respawns").c_str()), 0);
  EXPECT_EQ(std::atol(result.server_stats.at("errors").c_str()), 0);
  const auto phases = engine::sim::summarize(*trace, result, registry);
  std::uint64_t errors = 0;
  for (const auto& p : phases) errors += p.errors;
  EXPECT_EQ(errors, 0u);
  engine::sim::ReportOptions report;
  report.mode = "unix";
  const std::string json =
      engine::sim::render_report_json(*trace, result, phases, report);
  EXPECT_NE(json.find("\"server_retries\": "), std::string::npos) << json;
  EXPECT_NE(json.find("\"server_respawns\": "), std::string::npos) << json;

  // Shut the fleet down and reap it.
  const int fd = engine::unix_connect(socket_path, &error);
  ASSERT_GE(fd, 0) << error;
  const char* bye = "shutdown\n";
  ASSERT_EQ(::write(fd, bye, 9), 9);
  ::close(fd);
  int status = 0;
  ::waitpid(pid, &status, 0);
  EXPECT_TRUE(WIFEXITED(status));

  fs::remove_all(dir);
}

#endif  // BISCHED_CLI_PATH

}  // namespace
}  // namespace bisched

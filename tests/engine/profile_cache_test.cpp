#include "engine/profile_cache.hpp"

#include <gtest/gtest.h>

#include "sched/instance_hash.hpp"
#include "testing_util.hpp"
#include "util/prng.hpp"

namespace bisched {
namespace {

using engine::CachedProfile;
using engine::InstanceProfile;
using engine::ProfileCache;

UniformInstance small_uniform() {
  Graph g(4);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  return make_uniform_instance({2, 1, 1, 3}, {3, 1}, std::move(g));
}

TEST(InstanceHash, StableAcrossObjectIdentityAndEdgeOrder) {
  const auto a = small_uniform();
  // Same content, separately constructed, edges inserted in the other order.
  Graph g(4);
  g.add_edge(1, 3);
  g.add_edge(0, 2);
  const auto b = make_uniform_instance({2, 1, 1, 3}, {3, 1}, std::move(g));
  EXPECT_EQ(instance_hash(a), instance_hash(b));
  EXPECT_EQ(instance_hash(a), instance_hash(a));
}

TEST(InstanceHash, GoldenValueIsPartOfTheServingContract) {
  // The hash keys cross-process caches and appears in result rows; an
  // accidental change to the canonical serialization must fail loudly here.
  EXPECT_EQ(hash_hex(instance_hash(small_uniform())), "b4f2633d9d7c540c");
}

TEST(InstanceHash, DistinguishesContentAndModel) {
  const auto base = small_uniform();
  auto heavier = small_uniform();
  heavier.p[0] += 1;
  EXPECT_NE(instance_hash(base), instance_hash(heavier));

  auto faster = small_uniform();
  faster.speeds = {4, 1};
  EXPECT_NE(instance_hash(base), instance_hash(faster));

  auto rewired = small_uniform();
  rewired.conflicts = Graph(4);
  rewired.conflicts.add_edge(0, 2);
  EXPECT_NE(instance_hash(base), instance_hash(rewired));

  // A uniform and an unrelated instance never collide (model tag).
  const auto r2 = make_unrelated_instance({{1, 1}, {1, 1}}, Graph(2));
  const auto q2 = make_uniform_instance({1, 1}, {1, 1}, Graph(2));
  EXPECT_NE(instance_hash(r2), instance_hash(q2));
}

TEST(InstanceHash, HexIsFixedWidthLowercase) {
  EXPECT_EQ(hash_hex(0), "0000000000000000");
  EXPECT_EQ(hash_hex(0xabcdef0123456789ULL), "abcdef0123456789");
}

TEST(ProfileCache, MissThenHitReturnsTheProbedProfile) {
  ProfileCache cache;
  const auto inst = small_uniform();
  const InstanceProfile direct = engine::probe(inst);

  const CachedProfile first = cache.profile(inst);
  EXPECT_FALSE(first.hit());
  EXPECT_EQ(first.hash, instance_hash(inst));
  EXPECT_EQ(first.profile.graph_classes, direct.graph_classes);
  EXPECT_EQ(first.profile.total_work, direct.total_work);
  EXPECT_EQ(first.profile.speed_lcm, direct.speed_lcm);

  const CachedProfile second = cache.profile(inst);
  EXPECT_TRUE(second.hit());
  EXPECT_EQ(second.hash, first.hash);
  EXPECT_EQ(second.profile.jobs, direct.jobs);
  EXPECT_EQ(second.profile.machines, direct.machines);
  EXPECT_EQ(second.profile.unit_jobs, direct.unit_jobs);
  EXPECT_EQ(second.profile.has_class(engine::kGraphCompleteBipartite),
            direct.has_class(engine::kGraphCompleteBipartite));

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ProfileCache, DistinctInstancesDoNotAlias) {
  Rng rng(31);
  ProfileCache cache;
  for (int trial = 0; trial < 10; ++trial) {
    const auto q = testing::random_uniform_instance(4, 4, 2, 5, 3, rng);
    const auto cached = cache.profile(q);
    EXPECT_FALSE(cached.hit()) << "trial " << trial;
    EXPECT_EQ(cached.profile.total_work, engine::probe(q).total_work);
  }
  EXPECT_EQ(cache.stats().misses, 10u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(ProfileCache, ServesBothModelsAndClearResets) {
  ProfileCache cache;
  const auto q = small_uniform();
  const auto r = make_unrelated_instance({{3, 1}, {2, 5}}, Graph(2));
  cache.profile(q);
  cache.profile(r);
  EXPECT_TRUE(cache.profile(q).hit());
  EXPECT_TRUE(cache.profile(r).hit());
  EXPECT_EQ(cache.stats().entries, 2u);

  cache.clear();
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_FALSE(cache.profile(q).hit());
}

TEST(ProfileCache, CapacityBoundEvictsLeastRecentlyUsed) {
  Rng rng(32);
  ProfileCache cache(2);  // tiny: the third distinct insert evicts the LRU entry
  const auto a = testing::random_uniform_instance(3, 3, 2, 3, 2, rng);
  const auto b = testing::random_uniform_instance(3, 3, 2, 3, 2, rng);
  const auto c = testing::random_uniform_instance(3, 3, 2, 3, 2, rng);
  cache.profile(a);
  cache.profile(b);
  EXPECT_TRUE(cache.profile(a).hit());  // promotes a: b is now the LRU entry
  cache.profile(c);                   // evicts b
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_TRUE(cache.profile(a).hit());
  EXPECT_TRUE(cache.profile(c).hit());
  // Correctness is unaffected by eviction — only hit rate.
  const auto again = cache.profile(b);
  EXPECT_FALSE(again.hit());
  EXPECT_EQ(again.profile.total_work, engine::probe(b).total_work);
}

}  // namespace
}  // namespace bisched

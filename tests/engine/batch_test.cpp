#include "engine/batch.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "io/format.hpp"
#include "random/generators.hpp"
#include "testing_util.hpp"
#include "util/prng.hpp"

namespace bisched {
namespace {

namespace fs = std::filesystem;

using engine::BatchOptions;
using engine::BatchRow;
using engine::BatchRunner;
using engine::SolverRegistry;

class BatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("bisched_batch_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string write_file(const std::string& name, const std::string& content) {
    const auto path = dir_ / name;
    std::ofstream out(path);
    out << content;
    return path.string();
  }

  template <typename Instance>
  std::string write_inst(const std::string& name, const Instance& inst) {
    const auto path = dir_ / name;
    std::ofstream out(path);
    write_instance(out, inst);
    return path.string();
  }

  // Six uniform + six unrelated instances, named so directory order
  // interleaves the models.
  std::vector<std::string> write_mixed_instances() {
    Rng rng(99);
    std::vector<std::string> paths;
    for (int i = 0; i < 6; ++i) {
      paths.push_back(write_inst("a" + std::to_string(i) + ".inst",
                                 testing::random_uniform_instance(5, 5, 3, 4, 3, rng)));
      paths.push_back(write_inst("b" + std::to_string(i) + ".inst",
                                 testing::random_r2_instance(6, 6, 12, rng)));
    }
    return paths;
  }

  fs::path dir_;
};

TEST_F(BatchTest, IdenticalRowsAtAnyThreadCount) {
  const auto paths = write_mixed_instances();
  ASSERT_GE(paths.size(), 10u);

  BatchOptions options;
  std::vector<std::vector<BatchRow>> runs;
  for (unsigned threads : {1u, 2u, 7u}) {
    options.threads = threads;
    runs.push_back(BatchRunner(SolverRegistry::builtin(), options).run(paths));
  }
  for (const auto& rows : runs) {
    ASSERT_EQ(rows.size(), paths.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      EXPECT_TRUE(rows[i].ok) << rows[i].error;
      EXPECT_EQ(rows[i].file, paths[i]);  // input order preserved
      EXPECT_EQ(rows[i].makespan, runs[0][i].makespan);
      EXPECT_EQ(rows[i].solver, runs[0][i].solver);
      EXPECT_EQ(rows[i].model, runs[0][i].model);
    }
  }
}

TEST_F(BatchTest, MalformedInstanceYieldsErrorRowNotCrash) {
  Rng rng(5);
  const std::vector<std::string> paths = {
      write_inst("good.inst", testing::random_uniform_instance(4, 4, 2, 3, 3, rng)),
      write_file("bad.inst", "bisched uniform v1\njobs 3\np 1 2\n"),
      write_file("missing.inst", "") + ".does_not_exist",
  };
  const auto rows = BatchRunner(SolverRegistry::builtin(), {}).run(paths);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_TRUE(rows[0].ok);
  EXPECT_FALSE(rows[1].ok);
  EXPECT_NE(rows[1].error.find("parse error"), std::string::npos);
  EXPECT_FALSE(rows[2].ok);
  EXPECT_NE(rows[2].error.find("cannot open"), std::string::npos);
}

TEST_F(BatchTest, NamedSolverAppliesPerRow) {
  Rng rng(6);
  const std::vector<std::string> paths = {
      write_inst("r2.inst", testing::random_r2_instance(5, 5, 10, rng)),
      write_inst("q.inst", testing::random_uniform_instance(4, 4, 3, 3, 2, rng)),
  };
  BatchOptions options;
  options.alg = "alg4";
  const auto rows = BatchRunner(SolverRegistry::builtin(), options).run(paths);
  EXPECT_TRUE(rows[0].ok);
  EXPECT_EQ(rows[0].solver, "alg4");
  EXPECT_FALSE(rows[1].ok);  // alg4 is unrelated-only
  EXPECT_NE(rows[1].error.find("not applicable"), std::string::npos);
}

TEST_F(BatchTest, CollectFromDirectorySortsAndFromManifestResolvesRelative) {
  Rng rng(7);
  write_inst("z.inst", testing::random_uniform_instance(3, 3, 2, 2, 2, rng));
  write_inst("a.inst", testing::random_uniform_instance(3, 3, 2, 2, 2, rng));

  std::string error;
  const auto from_dir = engine::collect_instance_paths(dir_.string(), &error);
  ASSERT_TRUE(error.empty()) << error;
  ASSERT_EQ(from_dir.size(), 2u);
  EXPECT_LT(from_dir[0], from_dir[1]);  // sorted

  const auto manifest =
      write_file("manifest.txt", "# instances\n  a.inst\n\nz.inst\n");
  const auto from_manifest = engine::collect_instance_paths(manifest, &error);
  ASSERT_TRUE(error.empty()) << error;
  ASSERT_EQ(from_manifest.size(), 2u);
  EXPECT_EQ(fs::path(from_manifest[0]).filename(), "a.inst");
  EXPECT_TRUE(fs::exists(from_manifest[0]));

  engine::collect_instance_paths((dir_ / "nope.txt").string(), &error);
  EXPECT_FALSE(error.empty());
}

TEST_F(BatchTest, CsvAndJsonSerializeAllRows) {
  BatchRow ok_row;
  ok_row.file = "with,comma.inst";
  ok_row.ok = true;
  ok_row.model = "uniform";
  ok_row.jobs = 4;
  ok_row.machines = 2;
  ok_row.solver = "alg1";
  ok_row.guarantee = "sqrt(sum p)";
  ok_row.makespan = "7/2";
  ok_row.makespan_value = 3.5;
  BatchRow bad_row;
  bad_row.file = "bad.inst";
  bad_row.error = "parse error: expected \"p\"";
  const std::vector<BatchRow> rows = {ok_row, bad_row};

  std::ostringstream csv;
  engine::write_rows_csv(csv, rows);
  const std::string csv_text = csv.str();
  EXPECT_NE(csv_text.find("\"with,comma.inst\""), std::string::npos);
  EXPECT_NE(csv_text.find("7/2"), std::string::npos);
  EXPECT_EQ(std::count(csv_text.begin(), csv_text.end(), '\n'), 3);  // header + 2 rows

  std::ostringstream json;
  engine::write_rows_json(json, rows);
  const std::string json_text = json.str();
  EXPECT_NE(json_text.find("\"makespan\": \"7/2\""), std::string::npos);
  EXPECT_NE(json_text.find("\\\"p\\\""), std::string::npos);  // escaped quotes
  EXPECT_EQ(json_text.front(), '[');
}

}  // namespace
}  // namespace bisched

#include "engine/batch.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "io/format.hpp"
#include "random/generators.hpp"
#include "testing_util.hpp"
#include "util/prng.hpp"

namespace bisched {
namespace {

namespace fs = std::filesystem;

using engine::BatchOptions;
using engine::BatchRow;
using engine::BatchRunner;
using engine::SolverRegistry;

class BatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("bisched_batch_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string write_file(const std::string& name, const std::string& content) {
    const auto path = dir_ / name;
    std::ofstream out(path);
    out << content;
    return path.string();
  }

  template <typename Instance>
  std::string write_inst(const std::string& name, const Instance& inst) {
    const auto path = dir_ / name;
    std::ofstream out(path);
    write_instance(out, inst);
    return path.string();
  }

  // Six uniform + six unrelated instances, named so directory order
  // interleaves the models.
  std::vector<std::string> write_mixed_instances() {
    Rng rng(99);
    std::vector<std::string> paths;
    for (int i = 0; i < 6; ++i) {
      paths.push_back(write_inst("a" + std::to_string(i) + ".inst",
                                 testing::random_uniform_instance(5, 5, 3, 4, 3, rng)));
      paths.push_back(write_inst("b" + std::to_string(i) + ".inst",
                                 testing::random_r2_instance(6, 6, 12, rng)));
    }
    return paths;
  }

  fs::path dir_;
};

TEST_F(BatchTest, IdenticalRowsAtAnyThreadCount) {
  const auto paths = write_mixed_instances();
  ASSERT_GE(paths.size(), 10u);

  BatchOptions options;
  std::vector<std::vector<BatchRow>> runs;
  for (unsigned threads : {1u, 2u, 7u}) {
    options.threads = threads;
    runs.push_back(BatchRunner(SolverRegistry::builtin(), options).run(paths));
  }
  for (const auto& rows : runs) {
    ASSERT_EQ(rows.size(), paths.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      EXPECT_TRUE(rows[i].ok) << rows[i].error;
      EXPECT_EQ(rows[i].seq, static_cast<std::int64_t>(i));
      EXPECT_EQ(rows[i].file, paths[i]);  // input order restored by run()
      EXPECT_EQ(rows[i].makespan, runs[0][i].makespan);
      EXPECT_EQ(rows[i].solver, runs[0][i].solver);
      EXPECT_EQ(rows[i].model, runs[0][i].model);
      EXPECT_EQ(rows[i].instance_hash, runs[0][i].instance_hash);
    }
  }
}

TEST_F(BatchTest, SerializedOutputIsByteIdenticalModuloRowOrderAcrossThreads) {
  const auto paths = write_mixed_instances();
  BatchOptions options;
  options.stable_output = true;  // zero the measured wall_ms
  std::vector<std::vector<std::string>> line_sets;
  for (unsigned threads : {1u, 7u}) {
    options.threads = threads;
    std::vector<std::string> lines;
    BatchRunner(SolverRegistry::builtin(), options)
        .run_streaming(paths, [&lines](const BatchRow& row) {
          std::ostringstream one;
          engine::write_row_csv(one, row);
          std::ostringstream one_json;
          engine::write_row_json(one_json, row);
          lines.push_back(one.str() + one_json.str());
        });
    std::sort(lines.begin(), lines.end());
    line_sets.push_back(std::move(lines));
  }
  EXPECT_EQ(line_sets[0], line_sets[1]);
}

TEST_F(BatchTest, StreamingDeliversRowsBeforeTheRunCompletes) {
  // The proof that rows stream (rather than being collected and flushed just
  // before run_streaming returns): the sink itself *creates* the second
  // instance file when the first row arrives. With one worker, a streaming
  // pipeline delivers row 0 before opening path 1, so path 1 exists by then;
  // a collect-then-write implementation would have tried (and failed) to
  // open it long before any sink call ran.
  Rng rng(23);
  const auto inst = testing::random_uniform_instance(4, 4, 2, 3, 3, rng);
  const std::string first = write_inst("first.inst", inst);
  const std::string late = (dir_ / "late.inst").string();  // not yet written
  const std::vector<std::string> paths = {first, late};

  BatchOptions options;
  options.threads = 1;
  std::size_t calls = 0;
  std::vector<BatchRow> rows;
  BatchRunner(SolverRegistry::builtin(), options)
      .run_streaming(paths, [&](const BatchRow& row) {
        if (calls++ == 0) {
          std::ofstream out(late);
          write_instance(out, inst);
        }
        rows.push_back(row);
      });
  ASSERT_EQ(calls, 2u);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].seq, 0);
  EXPECT_TRUE(rows[0].ok) << rows[0].error;
  EXPECT_EQ(rows[1].seq, 1);
  EXPECT_TRUE(rows[1].ok) << rows[1].error;  // fails for collect-then-write
}

TEST_F(BatchTest, ShardsPartitionTheCorpus) {
  std::vector<std::string> paths;
  for (int i = 0; i < 11; ++i) paths.push_back("p" + std::to_string(i));

  for (int count : {1, 2, 3, 5, 11, 13}) {
    std::vector<std::string> reunion;
    std::size_t total = 0;
    for (int index = 0; index < count; ++index) {
      const auto mine = engine::shard_paths(paths, {index, count});
      total += mine.size();
      reunion.insert(reunion.end(), mine.begin(), mine.end());
      // Round-robin keeps every shard within one item of the others.
      EXPECT_GE(mine.size(), paths.size() / static_cast<std::size_t>(count));
    }
    // Disjoint + exhaustive: the union has no duplicates and covers paths.
    EXPECT_EQ(total, paths.size()) << "count " << count;
    std::sort(reunion.begin(), reunion.end());
    std::vector<std::string> expected = paths;
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(reunion, expected) << "count " << count;
  }
}

TEST_F(BatchTest, ShardedRunnersTogetherCoverTheDirectory) {
  const auto paths = write_mixed_instances();
  BatchOptions options;
  std::vector<BatchRow> all;
  for (int index = 0; index < 3; ++index) {
    options.shard = {index, 3};
    const auto rows = BatchRunner(SolverRegistry::builtin(), options).run(paths);
    all.insert(all.end(), rows.begin(), rows.end());
  }
  ASSERT_EQ(all.size(), paths.size());
  std::set<std::string> files;
  std::set<std::int64_t> seqs;
  for (const auto& row : all) {
    EXPECT_TRUE(row.ok) << row.error;
    files.insert(row.file);
    seqs.insert(row.seq);
    // seq is the global pre-shard index: it must point back at the same
    // path in the unsharded corpus, so merged shard outputs stay joinable.
    ASSERT_LT(static_cast<std::size_t>(row.seq), paths.size());
    EXPECT_EQ(row.file, paths[static_cast<std::size_t>(row.seq)]);
  }
  EXPECT_EQ(files.size(), paths.size());  // disjoint shards, no path twice
  EXPECT_EQ(seqs.size(), paths.size());   // no seq collisions across shards
}

TEST_F(BatchTest, RepeatedInstancesHitTheSharedProfileCache) {
  Rng rng(21);
  const auto inst = testing::random_uniform_instance(5, 5, 2, 4, 3, rng);
  const std::vector<std::string> paths = {
      write_inst("one.inst", inst),
      write_inst("two.inst", inst),  // same content, different file
  };
  BatchOptions options;
  options.threads = 1;
  const BatchRunner runner(SolverRegistry::builtin(), options);
  const auto rows = runner.run(paths);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].instance_hash, rows[1].instance_hash);
  EXPECT_EQ(rows[0].cache_tier, engine::CacheTier::kMiss);
  // Content-addressed: the path is irrelevant (memory tier — no store here).
  EXPECT_EQ(rows[1].cache_tier, engine::CacheTier::kMemory);
  EXPECT_EQ(runner.cache().stats().hits, 1u);
  EXPECT_EQ(runner.cache().stats().misses, 1u);
}

TEST_F(BatchTest, RepeatedInstancesHitTheResultCache) {
  Rng rng(22);
  const auto inst = testing::random_uniform_instance(5, 5, 2, 4, 3, rng);
  const std::vector<std::string> paths = {
      write_inst("one.inst", inst),
      write_inst("two.inst", inst),  // same content, different file
  };
  BatchOptions options;
  options.threads = 1;
  const BatchRunner runner(SolverRegistry::builtin(), options);
  const auto rows = runner.run(paths);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_TRUE(rows[0].result_cache_used);
  EXPECT_EQ(rows[0].result_tier, engine::CacheTier::kMiss);
  EXPECT_EQ(rows[1].result_tier, engine::CacheTier::kMemory);  // served warm
  EXPECT_EQ(rows[1].solver, rows[0].solver);
  EXPECT_EQ(rows[1].makespan, rows[0].makespan);
  EXPECT_EQ(runner.results().stats().hits, 1u);
  EXPECT_EQ(runner.results().stats().misses, 1u);

  // A shared warm state carries warmth across runners, like the serve loop.
  engine::WarmState shared_warm;
  const BatchRunner first(SolverRegistry::builtin(), options, &shared_warm);
  (void)first.run(paths);
  const BatchRunner second(SolverRegistry::builtin(), options, &shared_warm);
  const auto warm_rows = second.run(paths);
  EXPECT_EQ(warm_rows[0].result_tier, engine::CacheTier::kMemory);
  EXPECT_EQ(warm_rows[1].result_tier, engine::CacheTier::kMemory);
}

TEST_F(BatchTest, MalformedInstanceYieldsErrorRowNotCrash) {
  Rng rng(5);
  const std::vector<std::string> paths = {
      write_inst("good.inst", testing::random_uniform_instance(4, 4, 2, 3, 3, rng)),
      write_file("bad.inst", "bisched uniform v1\njobs 3\np 1 2\n"),
      write_file("missing.inst", "") + ".does_not_exist",
  };
  const auto rows = BatchRunner(SolverRegistry::builtin(), {}).run(paths);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_TRUE(rows[0].ok);
  EXPECT_FALSE(rows[1].ok);
  EXPECT_NE(rows[1].error.find("parse error"), std::string::npos);
  EXPECT_FALSE(rows[2].ok);
  EXPECT_NE(rows[2].error.find("cannot open"), std::string::npos);
}

TEST_F(BatchTest, NamedSolverAppliesPerRow) {
  Rng rng(6);
  const std::vector<std::string> paths = {
      write_inst("r2.inst", testing::random_r2_instance(5, 5, 10, rng)),
      write_inst("q.inst", testing::random_uniform_instance(4, 4, 3, 3, 2, rng)),
  };
  BatchOptions options;
  options.alg = "alg4";
  const auto rows = BatchRunner(SolverRegistry::builtin(), options).run(paths);
  EXPECT_TRUE(rows[0].ok);
  EXPECT_EQ(rows[0].solver, "alg4");
  EXPECT_FALSE(rows[1].ok);  // alg4 is unrelated-only
  EXPECT_NE(rows[1].error.find("not applicable"), std::string::npos);
}

TEST_F(BatchTest, CollectFromDirectorySortsAndFromManifestResolvesRelative) {
  Rng rng(7);
  write_inst("z.inst", testing::random_uniform_instance(3, 3, 2, 2, 2, rng));
  write_inst("a.inst", testing::random_uniform_instance(3, 3, 2, 2, 2, rng));

  std::string error;
  const auto from_dir = engine::collect_instance_paths(dir_.string(), &error);
  ASSERT_TRUE(error.empty()) << error;
  ASSERT_EQ(from_dir.size(), 2u);
  EXPECT_LT(from_dir[0], from_dir[1]);  // sorted

  const auto manifest =
      write_file("manifest.txt", "# instances\n  a.inst\n\nz.inst\n");
  const auto from_manifest = engine::collect_instance_paths(manifest, &error);
  ASSERT_TRUE(error.empty()) << error;
  ASSERT_EQ(from_manifest.size(), 2u);
  EXPECT_EQ(fs::path(from_manifest[0]).filename(), "a.inst");
  EXPECT_TRUE(fs::exists(from_manifest[0]));

  engine::collect_instance_paths((dir_ / "nope.txt").string(), &error);
  EXPECT_FALSE(error.empty());
}

TEST_F(BatchTest, OutputPathIsExcludedFromTheSweepByPathNotJustEquivalence) {
  Rng rng(8);
  write_inst("a.inst", testing::random_uniform_instance(3, 3, 2, 2, 2, rng));
  write_inst("b.inst", testing::random_uniform_instance(3, 3, 2, 2, 2, rng));
  write_file("results.csv", "seq,file,status\n");  // last run's output

  std::string error;
  auto paths = engine::collect_instance_paths(dir_.string(), &error);
  ASSERT_TRUE(error.empty()) << error;
  ASSERT_EQ(paths.size(), 3u);

  // A differently-spelled path to the same file is still excluded
  // (filesystem equivalence).
  auto spelled = paths;
  const std::string dotted = (dir_ / "." / "results.csv").string();
  EXPECT_EQ(engine::exclude_output_path(spelled, dotted), 1u);
  EXPECT_EQ(spelled.size(), 2u);

  // A NOT-YET-CREATED output resolves by normalized path — the case plain
  // equivalence misses entirely.
  std::vector<std::string> future = {(dir_ / "sub" / ".." / "next.csv").string(),
                                     (dir_ / "a.inst").string()};
  EXPECT_EQ(engine::exclude_output_path(future, (dir_ / "next.csv").string()), 1u);
  ASSERT_EQ(future.size(), 1u);
  EXPECT_EQ(future[0], (dir_ / "a.inst").string());

  // path_inside_directory powers the CLI warning.
  EXPECT_TRUE(engine::path_inside_directory((dir_ / "results.csv").string(),
                                            dir_.string()));
  EXPECT_TRUE(engine::path_inside_directory((dir_ / "deep" / "r.csv").string(),
                                            dir_.string()));
  EXPECT_FALSE(engine::path_inside_directory(
      (fs::temp_directory_path() / "elsewhere.csv").string(), dir_.string()));
  EXPECT_FALSE(engine::path_inside_directory(dir_.string(), dir_.string()));
}

TEST_F(BatchTest, CsvAndJsonSerializeAllRows) {
  BatchRow ok_row;
  ok_row.seq = 0;
  ok_row.file = "with,comma.inst";
  ok_row.ok = true;
  ok_row.model = "uniform";
  ok_row.jobs = 4;
  ok_row.machines = 2;
  ok_row.instance_hash = "00000000deadbeef";
  ok_row.cache_tier = engine::CacheTier::kMemory;
  ok_row.result_cache_used = true;
  ok_row.result_tier = engine::CacheTier::kDisk;
  ok_row.solver = "alg1";
  ok_row.guarantee = "sqrt(sum p)";
  ok_row.makespan = "7/2";
  ok_row.makespan_value = 3.5;
  BatchRow bad_row;
  bad_row.seq = 1;
  bad_row.file = "bad.inst";
  bad_row.error = "parse error: expected \"p\"";
  const std::vector<BatchRow> rows = {ok_row, bad_row};

  std::ostringstream csv;
  engine::write_rows_csv(csv, rows);
  const std::string csv_text = csv.str();
  EXPECT_NE(csv_text.find("\"with,comma.inst\""), std::string::npos);
  EXPECT_NE(csv_text.find("7/2"), std::string::npos);
  // cache + solve_cache carry their serving tier.
  EXPECT_NE(csv_text.find(",hit-memory,hit-disk,"), std::string::npos);
  EXPECT_EQ(std::count(csv_text.begin(), csv_text.end(), '\n'), 3);  // header + 2 rows

  // JSON output is JSON Lines: one self-contained object per row, no array
  // framing, so streamed rows concatenate into valid output.
  std::ostringstream json;
  engine::write_rows_json(json, rows);
  const std::string json_text = json.str();
  EXPECT_EQ(json_text.front(), '{');
  EXPECT_EQ(std::count(json_text.begin(), json_text.end(), '\n'), 2);  // 2 rows
  EXPECT_NE(json_text.find("\"makespan\": \"7/2\""), std::string::npos);
  EXPECT_NE(json_text.find("\"cache\": \"hit-memory\""), std::string::npos);
  EXPECT_NE(json_text.find("\"solve_cache\": \"hit-disk\""), std::string::npos);
  // The error row never reached the caches: both provenance fields stay "".
  EXPECT_NE(json_text.find("\"solve_cache\": \"\""), std::string::npos);
  EXPECT_NE(json_text.find("\\\"p\\\""), std::string::npos);  // escaped quotes
}

TEST_F(BatchTest, WritersEscapeDelimitersConsistentlyAcrossFormats) {
  // Hostile instance names: CSV delimiters, JSON quotes, newlines, and
  // control characters must round-trip as data in both formats.
  BatchRow row;
  row.seq = 7;
  row.file = "a,b\"c\nd\te\x01.inst";
  row.error = "line1\nline2 \"quoted\"";

  std::ostringstream csv;
  engine::write_row_csv(csv, row);
  const std::string csv_text = csv.str();
  // RFC-4180: the field is quoted, embedded quotes doubled — a CSV reader
  // recovers the exact name.
  EXPECT_NE(csv_text.find("\"a,b\"\"c\nd\te\x01.inst\""), std::string::npos);

  std::ostringstream json;
  engine::write_row_json(json, row);
  const std::string json_text = json.str();
  EXPECT_NE(json_text.find("a,b\\\"c\\nd\\te\\u0001.inst"), std::string::npos);
  EXPECT_NE(json_text.find("line1\\nline2 \\\"quoted\\\""), std::string::npos);
  // One line per row even when fields contain newlines.
  EXPECT_EQ(std::count(json_text.begin(), json_text.end(), '\n'), 1);

  // The serve-mode id (a row member, stamped before encoding) goes through
  // the same escaping.
  row.id = "req \"1\",\n2";
  std::ostringstream with_id;
  engine::write_row_json(with_id, row);
  EXPECT_NE(with_id.str().find("\"id\": \"req \\\"1\\\",\\n2\""), std::string::npos);
}

}  // namespace
}  // namespace bisched

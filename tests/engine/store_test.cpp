// Warm-state store tests: the binary codecs (round trips + golden byte
// pins — the persisted formats are a cross-process contract, like the
// instance hash), the DiskTier's crash-safety (torn journal tails
// truncated, corrupt snapshot magic rejected, schema/flag bumps rejected as
// clean cold starts), WarmState tiering (a second handle over the same
// directory serves disk-tier hits), and the acceptance path: a second CLI
// *process* pointed at a populated --store answers from disk with
// responses bit-identical to a store-off run, provenance fields aside.
#include "engine/store/cache_store.hpp"

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/api.hpp"
#include "engine/registry.hpp"
#include "engine/store/codec.hpp"
#include "engine/store/warm_state.hpp"
#include "io/format.hpp"
#include "sched/simd_dispatch.hpp"
#include "testing_util.hpp"
#include "util/prng.hpp"

namespace bisched {
namespace {

namespace fs = std::filesystem;
namespace store = engine::store;

using engine::CacheTier;
using engine::WarmOptions;
using engine::WarmState;

std::string to_hex(const std::string& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  for (const char c : bytes) {
    const auto b = static_cast<unsigned char>(c);
    out += digits[b >> 4];
    out += digits[b & 0xf];
  }
  return out;
}

// A fresh per-test directory; removed on destruction.
struct TempDir {
  explicit TempDir(const char* name) : path(fs::temp_directory_path() / name) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  fs::path path;
};

// ------------------------------------------------------------------ codec ---

TEST(StoreCodec, ProfileRoundTripsAndMatchesTheGoldenBytes) {
  engine::InstanceProfile p;
  p.model = engine::kModelUniform;
  p.jobs = 4;
  p.machines = 2;
  p.num_edges = 2;
  p.unit_jobs = false;
  p.graph_classes = 0x0b;
  p.total_work = 7;
  p.speed_lcm = 3;

  const std::string bytes = store::encode_profile(p);
  // The persisted layout is a cross-process contract: changing it must bump
  // kProfileSchema AND this pin, deliberately.
  EXPECT_EQ(to_hex(bytes),
            "010000000400000002000000020000000000000000"
            "0b000000000000000700000000000000"
            "0300000000000000");

  engine::InstanceProfile back;
  ASSERT_TRUE(store::decode_profile(bytes, &back));
  EXPECT_EQ(back.model, p.model);
  EXPECT_EQ(back.jobs, p.jobs);
  EXPECT_EQ(back.machines, p.machines);
  EXPECT_EQ(back.num_edges, p.num_edges);
  EXPECT_EQ(back.unit_jobs, p.unit_jobs);
  EXPECT_EQ(back.graph_classes, p.graph_classes);
  EXPECT_EQ(back.total_work, p.total_work);
  EXPECT_EQ(back.speed_lcm, p.speed_lcm);

  // Truncated or padded blobs are rejected, never half-decoded.
  EXPECT_FALSE(store::decode_profile(bytes.substr(0, bytes.size() - 1), &back));
  EXPECT_FALSE(store::decode_profile(bytes + "x", &back));
}

TEST(StoreCodec, ResultRoundTripsAndMatchesTheGoldenBytes) {
  engine::SolveResult r;
  r.ok = true;
  r.solver = "q2";
  r.guarantee = "exact";
  r.schedule.machine_of = {0, 1};
  r.cmax = Rational(7, 2);
  r.wall_ms = 0;
  r.solvers_tried = 1;

  const std::string bytes = store::encode_result(r);
  EXPECT_EQ(to_hex(bytes),
            "0100000000"
            "020000007132"
            "050000006578616374"
            "020000000000000001000000"
            "07000000000000000200000000000000"
            "0000000000000000"
            "01000000");

  engine::SolveResult back;
  ASSERT_TRUE(store::decode_result(bytes, &back));
  EXPECT_TRUE(back.ok);
  EXPECT_EQ(back.solver, "q2");
  EXPECT_EQ(back.guarantee, "exact");
  EXPECT_EQ(back.schedule.machine_of, r.schedule.machine_of);
  EXPECT_EQ(back.cmax, Rational(7, 2));
  EXPECT_EQ(back.solvers_tried, 1);

  EXPECT_FALSE(store::decode_result(bytes.substr(0, bytes.size() - 2), &back));
  // A corrupt job count must not drive a huge allocation or a bad loop.
  // Offset 20 = u8 ok + three length-prefixed strings ("", "q2", "exact"):
  // the first byte of the schedule-length u32.
  std::string corrupt = bytes;
  corrupt[20] = '\xff';
  corrupt[21] = '\xff';
  EXPECT_FALSE(store::decode_result(corrupt, &back));
}

TEST(StoreCodec, ResultKeyEncodingCoversEveryDeterminant) {
  engine::SolveOptions solve;
  solve.eps = 0.1;
  const store::ResultKey base = store::make_result_key(42, "auto", solve);
  EXPECT_EQ(base.schema, store::kResultKeySchema);

  const std::string encoded = store::encode_result_key(base);
  // Any single determinant flipped must change the persisted key bytes.
  auto changed = [&](auto mutate) {
    store::ResultKey other = base;
    mutate(other);
    return store::encode_result_key(other) != encoded;
  };
  EXPECT_TRUE(changed([](store::ResultKey& k) { k.hash = 43; }));
  EXPECT_TRUE(changed([](store::ResultKey& k) { k.alg = "alg1"; }));
  EXPECT_TRUE(changed([](store::ResultKey& k) { k.eps = 0.2; }));
  EXPECT_TRUE(changed([](store::ResultKey& k) { k.run_all = true; }));
  EXPECT_TRUE(changed([](store::ResultKey& k) { k.budget_ms = 50; }));
  EXPECT_TRUE(changed([](store::ResultKey& k) { k.schema = 2; }));
  EXPECT_EQ(store::encode_result_key(store::make_result_key(42, "auto", solve)),
            encoded);
}

// --------------------------------------------------------------- DiskTier ---

store::NamespaceConfig test_namespace(std::uint32_t schema = 1,
                                      std::uint64_t flags = 0) {
  return {"t", schema, flags};
}

TEST(CacheStoreDisk, EntriesPersistAcrossReopenViaJournalAndSnapshot) {
  TempDir dir("bisched_store_persist");
  std::string error;
  {
    auto cache_store = store::CacheStore::open(dir.path.string(), &error);
    ASSERT_NE(cache_store, nullptr) << error;
    auto* tier = cache_store->open_namespace(test_namespace());
    EXPECT_TRUE(tier->load_report().message.empty()) << tier->load_report().message;
    tier->put("k1", "v1");
    tier->put("k2", "v2");
    tier->put("k1", "v1b");  // overwrite: last put wins after replay
    tier->flush();
  }
  {
    // Journal-only reopen (no compaction happened).
    auto cache_store = store::CacheStore::open(dir.path.string(), &error);
    ASSERT_NE(cache_store, nullptr) << error;
    auto* tier = cache_store->open_namespace(test_namespace());
    EXPECT_EQ(tier->load_report().journal_entries, 3u);
    ASSERT_NE(tier->get("k1"), nullptr);
    EXPECT_EQ(*tier->get("k1"), "v1b");
    ASSERT_NE(tier->get("k2"), nullptr);
    EXPECT_EQ(tier->entries(), 2u);
    ASSERT_TRUE(tier->compact(&error)) << error;
  }
  {
    // Snapshot-only reopen (compaction reset the journal).
    auto cache_store = store::CacheStore::open(dir.path.string(), &error);
    ASSERT_NE(cache_store, nullptr) << error;
    auto* tier = cache_store->open_namespace(test_namespace());
    EXPECT_EQ(tier->load_report().snapshot_entries, 2u);
    EXPECT_EQ(tier->load_report().journal_entries, 0u);
    EXPECT_EQ(tier->entries(), 2u);
    EXPECT_EQ(*tier->get("k1"), "v1b");
  }
}

TEST(CacheStoreDisk, TornJournalTailIsTruncatedAndAppendingResumes) {
  TempDir dir("bisched_store_torn");
  const std::string journal = (dir.path / "t.journal").string();
  std::string error;
  std::uintmax_t good_size = 0;
  {
    auto cache_store = store::CacheStore::open(dir.path.string(), &error);
    auto* tier = cache_store->open_namespace(test_namespace());
    tier->put("k1", "v1");
    tier->put("k2", "v2");
    tier->flush();
    good_size = fs::file_size(journal);
    tier->put("k3", "v3");
    tier->flush();
  }
  // Crash mid-append: chop the last record in half.
  ASSERT_EQ(::truncate(journal.c_str(), static_cast<off_t>(good_size + 5)), 0);
  {
    auto cache_store = store::CacheStore::open(dir.path.string(), &error);
    auto* tier = cache_store->open_namespace(test_namespace());
    EXPECT_EQ(tier->load_report().journal_entries, 2u);
    EXPECT_EQ(tier->load_report().torn_bytes, 5u);
    EXPECT_NE(tier->load_report().message.find("torn"), std::string::npos);
    EXPECT_EQ(tier->get("k3"), nullptr);  // the torn entry is gone...
    EXPECT_EQ(*tier->get("k2"), "v2");    // ...everything before it survives
    EXPECT_EQ(fs::file_size(journal), good_size);  // tail physically removed
    tier->put("k4", "v4");  // appending resumes at the repaired tail
    tier->flush();
  }
  {
    auto cache_store = store::CacheStore::open(dir.path.string(), &error);
    auto* tier = cache_store->open_namespace(test_namespace());
    EXPECT_TRUE(tier->load_report().message.empty()) << tier->load_report().message;
    EXPECT_EQ(tier->entries(), 3u);
    ASSERT_NE(tier->get("k4"), nullptr);
    EXPECT_EQ(*tier->get("k4"), "v4");
  }

  // A bit-flip inside a record (checksum mismatch, not a short read) is
  // also treated as a tear: everything from the flipped record on is
  // dropped and physically truncated.
  {
    std::fstream f(journal, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(good_size) + 10);
    f.put('\xee');
  }
  {
    auto cache_store = store::CacheStore::open(dir.path.string(), &error);
    auto* tier = cache_store->open_namespace(test_namespace());
    EXPECT_EQ(tier->entries(), 2u);
    EXPECT_EQ(tier->get("k4"), nullptr);
    EXPECT_EQ(fs::file_size(journal), good_size);
  }
}

TEST(CacheStoreDisk, CorruptSnapshotMagicIsRejectedNotMisread) {
  TempDir dir("bisched_store_magic");
  const std::string snapshot = (dir.path / "t.snap").string();
  std::string error;
  {
    auto cache_store = store::CacheStore::open(dir.path.string(), &error);
    auto* tier = cache_store->open_namespace(test_namespace());
    tier->put("k1", "v1");
    ASSERT_TRUE(tier->compact(&error)) << error;
  }
  {
    std::fstream f(snapshot, std::ios::in | std::ios::out | std::ios::binary);
    f.put('X');  // stomp the magic
  }
  {
    auto cache_store = store::CacheStore::open(dir.path.string(), &error);
    auto* tier = cache_store->open_namespace(test_namespace());
    EXPECT_TRUE(tier->load_report().snapshot_rejected);
    EXPECT_NE(tier->load_report().message.find("snapshot rejected"), std::string::npos);
    EXPECT_EQ(tier->entries(), 0u);  // cold start, not a misdecoded entry
    // The next compaction heals the store in place.
    tier->put("k2", "v2");
    ASSERT_TRUE(tier->compact(&error)) << error;
  }
  {
    auto cache_store = store::CacheStore::open(dir.path.string(), &error);
    auto* tier = cache_store->open_namespace(test_namespace());
    EXPECT_TRUE(tier->load_report().message.empty());
    EXPECT_EQ(tier->entries(), 1u);
    EXPECT_NE(tier->get("k2"), nullptr);
  }
}

TEST(CacheStoreDisk, SchemaOrFlagMismatchIsACleanColdStart) {
  TempDir dir("bisched_store_schema");
  std::string error;
  {
    auto cache_store = store::CacheStore::open(dir.path.string(), &error);
    auto* tier = cache_store->open_namespace(test_namespace(/*schema=*/1));
    tier->put("k1", "v1");
    ASSERT_TRUE(tier->compact(&error)) << error;
    tier->put("k2", "v2");  // one journaled entry on top of the snapshot
    tier->flush();
  }
  {
    // A codec version bump: both files were recorded under schema 1 and
    // must be rejected — a v2 decoder reading v1 bytes would be garbage.
    auto cache_store = store::CacheStore::open(dir.path.string(), &error);
    auto* tier = cache_store->open_namespace(test_namespace(/*schema=*/2));
    EXPECT_TRUE(tier->load_report().snapshot_rejected);
    EXPECT_TRUE(tier->load_report().journal_rejected);
    EXPECT_EQ(tier->entries(), 0u);
    tier->put("k3", "v3");
    tier->flush();
  }
  {
    // The journal now speaks schema 2: a v2 reader loads it (the schema-1
    // snapshot stays rejected until the next compaction replaces it).
    auto cache_store = store::CacheStore::open(dir.path.string(), &error);
    auto* v2 = cache_store->open_namespace(test_namespace(/*schema=*/2));
    EXPECT_TRUE(v2->load_report().snapshot_rejected);
    EXPECT_EQ(v2->entries(), 1u);
    EXPECT_NE(v2->get("k3"), nullptr);
  }
  {
    // Acceptance is per FILE: a v1 reader still loads the (schema-1)
    // snapshot but rejects — and resets — the schema-2 journal. Mixed
    // versions never mix entries.
    auto cache_store = store::CacheStore::open(dir.path.string(), &error);
    auto* v1 = cache_store->open_namespace(test_namespace(/*schema=*/1));
    EXPECT_TRUE(v1->load_report().journal_rejected);
    EXPECT_FALSE(v1->load_report().snapshot_rejected);
    EXPECT_EQ(v1->entries(), 1u);
    EXPECT_NE(v1->get("k1"), nullptr);
    EXPECT_EQ(v1->get("k3"), nullptr);
  }
  {
    // Same schema, different semantic flags: a full cold start (the journal
    // was just reset to schema-1/flags-0, the snapshot is schema-1/flags-0).
    auto cache_store = store::CacheStore::open(dir.path.string(), &error);
    auto* flagged = cache_store->open_namespace(test_namespace(1, /*flags=*/1));
    EXPECT_TRUE(flagged->load_report().snapshot_rejected);
    EXPECT_TRUE(flagged->load_report().journal_rejected);
    EXPECT_EQ(flagged->entries(), 0u);
  }
}

// -------------------------------------------------------------- WarmState ---

TEST(WarmStateStore, SecondHandleOverTheSameDirectoryServesDiskTierHits) {
  TempDir dir("bisched_store_warm");
  Rng rng(61);
  const auto inst = testing::random_uniform_instance(5, 5, 2, 4, 3, rng);
  std::ostringstream text;
  write_instance(text, inst);
  const auto parse = [&] {
    std::istringstream in(text.str());
    return parse_instance(in);
  };

  const auto& registry = engine::SolverRegistry::builtin();
  WarmOptions options;
  options.store_dir = dir.path.string();
  std::string message;

  engine::SolveResponse cold;
  {
    WarmState first(options, &message);
    EXPECT_TRUE(message.empty()) << message;
    cold = engine::run_parsed(registry, first, "auto", {}, parse());
    ASSERT_TRUE(cold.ok) << cold.error;
    EXPECT_EQ(cold.cache_tier, CacheTier::kMiss);
    EXPECT_EQ(cold.result_tier, CacheTier::kMiss);
    // Same handle, same process: memory tier.
    const auto warm = engine::run_parsed(registry, first, "auto", {}, parse());
    EXPECT_EQ(warm.cache_tier, CacheTier::kMemory);
    EXPECT_EQ(warm.result_tier, CacheTier::kMemory);
    ASSERT_TRUE(first.checkpoint(&message)) << message;
  }

  // A fresh handle (fresh memory tiers — what a new process gets): the
  // solve is answered from the disk tier, bit-identical.
  WarmState second(options, &message);
  EXPECT_TRUE(message.empty()) << message;
  const auto from_disk = engine::run_parsed(registry, second, "auto", {}, parse());
  ASSERT_TRUE(from_disk.ok) << from_disk.error;
  EXPECT_EQ(from_disk.cache_tier, CacheTier::kDisk);
  EXPECT_EQ(from_disk.result_tier, CacheTier::kDisk);
  EXPECT_EQ(from_disk.solver, cold.solver);
  EXPECT_EQ(from_disk.makespan, cold.makespan);
  EXPECT_EQ(from_disk.makespan_value, cold.makespan_value);
  EXPECT_EQ(from_disk.instance_hash, cold.instance_hash);
  EXPECT_EQ(second.results().stats().disk_hits, 1u);
  EXPECT_EQ(second.profiles().stats().disk_hits, 1u);

  // Promotion: the disk hit now lives in the memory tier.
  const auto promoted = engine::run_parsed(registry, second, "auto", {}, parse());
  EXPECT_EQ(promoted.cache_tier, CacheTier::kMemory);
  EXPECT_EQ(promoted.result_tier, CacheTier::kMemory);

  // A different option set shares nothing: the key covers eps.
  engine::SolveOptions finer;
  finer.eps = 0.01;
  const auto other = engine::run_parsed(registry, second, "auto", finer, parse());
  ASSERT_TRUE(other.ok) << other.error;
  EXPECT_EQ(other.result_tier, CacheTier::kMiss);
}

// ------------------------------------------------------------ Write lease ---
// One writer per store directory. A second opener against a LIVE lease
// degrades to read-only (serves loaded entries, persists nothing, never
// releases someone else's lock); a lease whose owner is provably gone —
// garbage pid from a torn writer, or a pid the kernel no longer knows — is
// broken and taken over.

TEST(StoreLease, SecondLiveOpenerDegradesToReadOnlyAndStaleLeasesAreBroken) {
  TempDir dir("bisched_store_lease");
  const std::string lock = (dir.path / "LOCK").string();
  std::string error;

  auto owner = store::CacheStore::open(dir.path.string(), &error);
  ASSERT_NE(owner, nullptr) << error;
  EXPECT_FALSE(owner->read_only());
  EXPECT_TRUE(owner->lease_warning().empty()) << owner->lease_warning();
  auto* tier = owner->open_namespace(test_namespace());
  tier->put("k1", "v1");
  tier->flush();

  {
    // Held by a live pid (ours — exactly the case the pid-liveness check
    // must NOT misread as stale): degrade, don't corrupt.
    auto reader = store::CacheStore::open(dir.path.string(), &error);
    ASSERT_NE(reader, nullptr) << error;
    EXPECT_TRUE(reader->read_only());
    EXPECT_NE(reader->lease_warning().find("READ-ONLY"), std::string::npos)
        << reader->lease_warning();
    auto* read_tier = reader->open_namespace(test_namespace());
    ASSERT_NE(read_tier->get("k1"), nullptr);  // loaded entries still served
    read_tier->put("k2", "v2");  // accepted in memory, never journaled
    read_tier->flush();
    EXPECT_EQ(read_tier->journal_appends(), 0u);
  }
  // The reader's destructor must not release the owner's lease.
  EXPECT_TRUE(fs::exists(lock));

  // Nothing the reader wrote reached disk: a fresh (read-only) load sees
  // only the owner's entry.
  {
    auto check = store::CacheStore::open(dir.path.string(), &error);
    auto* check_tier = check->open_namespace(test_namespace());
    EXPECT_NE(check_tier->get("k1"), nullptr);
    EXPECT_EQ(check_tier->get("k2"), nullptr);
  }

  // The owner releases on destruction.
  owner.reset();
  EXPECT_FALSE(fs::exists(lock));

  // A garbage lock body is a torn writer: broken and taken over.
  {
    std::ofstream(lock) << "not-a-pid\n";
    auto taker = store::CacheStore::open(dir.path.string(), &error);
    ASSERT_NE(taker, nullptr) << error;
    EXPECT_FALSE(taker->read_only()) << taker->lease_warning();
  }

  // A lease whose owner pid is dead (ESRCH) is broken and taken over.
  {
    const pid_t child = ::fork();
    if (child == 0) ::_exit(0);
    ASSERT_GT(child, 0);
    ::waitpid(child, nullptr, 0);  // reaped: the pid is provably gone
    std::ofstream(lock) << child << "\n";
    auto taker = store::CacheStore::open(dir.path.string(), &error);
    ASSERT_NE(taker, nullptr) << error;
    EXPECT_FALSE(taker->read_only()) << taker->lease_warning();
  }
}

// ---------------------------------------------------------------------------
// The acceptance path, end to end through the real CLI: a second PROCESS
// pointed at a populated --store serves result-cache hits from disk, with
// responses bit-identical to store-off runs apart from the provenance
// fields. BISCHED_CLI_PATH is injected by CMake.

#ifdef BISCHED_CLI_PATH

std::string run_cli(const std::vector<std::string>& args, int* exit_code) {
  int out_pipe[2] = {-1, -1};
  if (::pipe(out_pipe) != 0) return {};
  const pid_t pid = ::fork();
  if (pid < 0) return {};
  if (pid == 0) {
    ::dup2(out_pipe[1], STDOUT_FILENO);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    if (FILE* null = std::fopen("/dev/null", "w")) {
      ::dup2(::fileno(null), STDERR_FILENO);
    }
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(BISCHED_CLI_PATH));
    for (const auto& arg : args) argv.push_back(const_cast<char*>(arg.c_str()));
    argv.push_back(nullptr);
    ::execv(BISCHED_CLI_PATH, argv.data());
    ::_exit(127);
  }
  ::close(out_pipe[1]);
  std::string out;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::read(out_pipe[0], buf, sizeof buf)) > 0) out.append(buf, static_cast<std::size_t>(n));
  ::close(out_pipe[0]);
  int status = 0;
  ::waitpid(pid, &status, 0);
  *exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return out;
}

TEST(StoreCli, SecondProcessHitsDiskWithResponsesBitIdenticalToStoreOff) {
  TempDir dir("bisched_store_cli");
  Rng rng(62);
  const auto inst = testing::random_uniform_instance(6, 6, 2, 4, 3, rng);
  const std::string file = (dir.path / "q.inst").string();
  {
    std::ofstream out(file);
    write_instance(out, inst);
  }
  const std::string store_dir = (dir.path / "store").string();
  const std::vector<std::string> base = {"solve", "--alg=auto", "--json", "--stable",
                                         file};
  auto with_store = base;
  with_store.insert(with_store.begin() + 1, "--store=" + store_dir);

  int exit_code = -1;
  const std::string first = run_cli(with_store, &exit_code);
  ASSERT_EQ(exit_code, 0) << first;
  EXPECT_NE(first.find("\"solve_cache\": \"miss\""), std::string::npos) << first;

  // Process #2, same store: both the probe and the full solve come off disk.
  const std::string second = run_cli(with_store, &exit_code);
  ASSERT_EQ(exit_code, 0) << second;
  EXPECT_NE(second.find("\"cache\": \"hit-disk\""), std::string::npos) << second;
  EXPECT_NE(second.find("\"solve_cache\": \"hit-disk\""), std::string::npos) << second;

  // Process #3, no store at all.
  const std::string without = run_cli(base, &exit_code);
  ASSERT_EQ(exit_code, 0) << without;

  // Bit-identical modulo provenance: normalize ONLY the two cache fields
  // and require byte equality of the full v1 line (wall_ms is zeroed by
  // --stable on both sides).
  const auto normalized = [](std::string line) {
    const auto replace = [&line](const std::string& from, const std::string& to) {
      const auto at = line.find(from);
      if (at != std::string::npos) line.replace(at, from.size(), to);
    };
    replace("\"cache\": \"hit-disk\"", "\"cache\": \"miss\"");
    replace("\"solve_cache\": \"hit-disk\"", "\"solve_cache\": \"miss\"");
    return line;
  };
  EXPECT_EQ(normalized(second), without);
  EXPECT_EQ(first, without);
}

// Like run_cli, but with BISCHED_FAULT armed in the child and stderr
// captured (the store's load/lease reports go there).
std::string run_cli_fault(const std::vector<std::string>& args, const char* fault,
                          int* exit_code, std::string* err_text) {
  int out_pipe[2] = {-1, -1};
  int err_pipe[2] = {-1, -1};
  if (::pipe(out_pipe) != 0 || ::pipe(err_pipe) != 0) return {};
  const pid_t pid = ::fork();
  if (pid < 0) return {};
  if (pid == 0) {
    ::dup2(out_pipe[1], STDOUT_FILENO);
    ::dup2(err_pipe[1], STDERR_FILENO);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    ::close(err_pipe[0]);
    ::close(err_pipe[1]);
    if (fault != nullptr) {
      ::setenv("BISCHED_FAULT", fault, 1);
    } else {
      ::unsetenv("BISCHED_FAULT");
    }
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(BISCHED_CLI_PATH));
    for (const auto& arg : args) argv.push_back(const_cast<char*>(arg.c_str()));
    argv.push_back(nullptr);
    ::execv(BISCHED_CLI_PATH, argv.data());
    ::_exit(127);
  }
  ::close(out_pipe[1]);
  ::close(err_pipe[1]);
  const auto drain = [](int fd) {
    std::string text;
    char buf[4096];
    ssize_t n = 0;
    while ((n = ::read(fd, buf, sizeof buf)) > 0) text.append(buf, static_cast<std::size_t>(n));
    ::close(fd);
    return text;
  };
  const std::string out = drain(out_pipe[0]);
  *err_text = drain(err_pipe[0]);
  int status = 0;
  ::waitpid(pid, &status, 0);
  *exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return out;
}

// Process-granularity crash safety: a CLI process KILLED mid-journal-append
// (BISCHED_FAULT=torn-journal — half a record flushed, then _exit) leaves a
// store the next process repairs on load: the torn tail is truncated and
// reported, everything persisted before the tear still serves from disk,
// and the victim entry is simply gone.

TEST(StoreCli, ProcessDeathMidJournalAppendIsRepairedOnTheNextOpen) {
  TempDir dir("bisched_store_crash");
  Rng rng(63);
  const auto survivor = testing::random_uniform_instance(6, 6, 2, 4, 3, rng);
  const auto victim = testing::random_uniform_instance(7, 7, 3, 4, 3, rng);
  const std::string survivor_file = (dir.path / "survivor.inst").string();
  const std::string victim_file = (dir.path / "victim.inst").string();
  {
    std::ofstream out(survivor_file);
    write_instance(out, survivor);
  }
  {
    std::ofstream out(victim_file);
    write_instance(out, victim);
  }
  const std::string store_dir = (dir.path / "store").string();
  const auto solve_args = [&](const std::string& file) {
    return std::vector<std::string>{"solve", "--store=" + store_dir, "--alg=auto",
                                    "--json", "--stable", file};
  };

  int exit_code = -1;
  std::string err;
  // Seed the store (clean exit): the survivor's entries are durable.
  const std::string seeded =
      run_cli_fault(solve_args(survivor_file), nullptr, &exit_code, &err);
  ASSERT_EQ(exit_code, 0) << seeded << err;
  EXPECT_NE(seeded.find("\"solve_cache\": \"miss\""), std::string::npos) << seeded;

  // The victim run dies INSIDE its first journal append — a real process
  // death with half a record flushed, not a simulated truncate.
  run_cli_fault(solve_args(victim_file), "torn-journal:0", &exit_code, &err);
  ASSERT_EQ(exit_code, 42) << err;

  // Next process: the tear is repaired and reported on stderr; the
  // survivor still answers from the disk tier.
  const std::string recovered =
      run_cli_fault(solve_args(survivor_file), nullptr, &exit_code, &err);
  ASSERT_EQ(exit_code, 0) << recovered << err;
  EXPECT_NE(err.find("torn"), std::string::npos) << err;
  EXPECT_NE(recovered.find("\"cache\": \"hit-disk\""), std::string::npos) << recovered;
  EXPECT_NE(recovered.find("\"solve_cache\": \"hit-disk\""), std::string::npos)
      << recovered;

  // The victim's own entry never made it in: it re-solves as a miss (and
  // this clean run leaves a repaired store behind — no more warnings).
  const std::string resolved =
      run_cli_fault(solve_args(victim_file), nullptr, &exit_code, &err);
  ASSERT_EQ(exit_code, 0) << resolved << err;
  EXPECT_NE(resolved.find("\"solve_cache\": \"miss\""), std::string::npos) << resolved;
  const std::string clean =
      run_cli_fault(solve_args(victim_file), nullptr, &exit_code, &err);
  ASSERT_EQ(exit_code, 0) << clean << err;
  EXPECT_EQ(err.find("torn"), std::string::npos) << err;
}

TEST(CliCatalog, ListAlgsJsonReportsResolvedSimdLevel) {
  int exit_code = -1;
  const std::string out = run_cli({"list-algs", "--json"}, &exit_code);
  ASSERT_EQ(exit_code, 0) << out;
  // The subprocess inherits this process's environment, so it resolves the
  // same level simd_level() reports here (BISCHED_SIMD override included).
  EXPECT_NE(out.find(std::string("\"simd\": \"") + to_string(simd_level()) + "\""),
            std::string::npos)
      << out;
}

#endif  // BISCHED_CLI_PATH

}  // namespace
}  // namespace bisched

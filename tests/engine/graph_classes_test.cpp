// Graph-class lattice tests: subsumption as data, detector-driven probe(),
// the complete-multipartite detector, and the acceptance path for new
// classes — a solver registered against a *new* class becomes applicable to
// every subsumed instance with zero edits to the engine core.
#include "engine/graph_classes.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "engine/portfolio.hpp"
#include "engine/registry.hpp"
#include "engine/solver.hpp"
#include "random/generators.hpp"
#include "sched/instance.hpp"
#include "sched/schedule.hpp"
#include "testing_util.hpp"
#include "util/prng.hpp"

namespace bisched {
namespace {

using engine::GraphClassId;
using engine::GraphClassLattice;

// Complete multipartite with the given part sizes: all cross-part edges.
Graph complete_multipartite_graph(const std::vector<int>& parts) {
  int n = 0;
  for (int p : parts) n += p;
  Graph g(n);
  int a_base = 0;
  for (std::size_t a = 0; a < parts.size(); ++a) {
    int b_base = a_base + parts[a];
    for (std::size_t b = a + 1; b < parts.size(); ++b) {
      for (int u = 0; u < parts[a]; ++u) {
        for (int v = 0; v < parts[b]; ++v) g.add_edge(a_base + u, b_base + v);
      }
      b_base += parts[b];
    }
    a_base += parts[a];
  }
  return g;
}

TEST(GraphClassLattice, BuiltinShapeAndSubsumption) {
  const auto& lattice = GraphClassLattice::builtin();
  ASSERT_GE(lattice.size(), 4);
  EXPECT_EQ(lattice.find("any"), engine::kGraphAny);
  EXPECT_EQ(lattice.find("bipartite"), engine::kGraphBipartite);
  EXPECT_EQ(lattice.find("complete-multipartite"), engine::kGraphCompleteMultipartite);
  EXPECT_EQ(lattice.find("complete-bipartite"), engine::kGraphCompleteBipartite);
  EXPECT_EQ(lattice.find("no-such-class"), engine::kGraphClassInvalid);

  // The acceptance chain: complete bipartite ⊂ complete multipartite ⊂ any.
  EXPECT_TRUE(lattice.subsumes(engine::kGraphCompleteMultipartite,
                               engine::kGraphCompleteBipartite));
  EXPECT_TRUE(lattice.subsumes(engine::kGraphAny, engine::kGraphCompleteMultipartite));
  EXPECT_TRUE(lattice.subsumes(engine::kGraphAny, engine::kGraphCompleteBipartite));
  // ... and the bipartite edge of the diamond.
  EXPECT_TRUE(lattice.subsumes(engine::kGraphBipartite, engine::kGraphCompleteBipartite));
  EXPECT_TRUE(lattice.subsumes(engine::kGraphAny, engine::kGraphBipartite));
  // Reflexive; and bipartite vs complete-multipartite are incomparable.
  EXPECT_TRUE(lattice.subsumes(engine::kGraphBipartite, engine::kGraphBipartite));
  EXPECT_FALSE(lattice.subsumes(engine::kGraphBipartite,
                                engine::kGraphCompleteMultipartite));
  EXPECT_FALSE(lattice.subsumes(engine::kGraphCompleteMultipartite,
                                engine::kGraphBipartite));
  EXPECT_FALSE(lattice.subsumes(engine::kGraphCompleteBipartite, engine::kGraphAny));

  // Parents are data, visible for docs/list-algs.
  const auto& parents = lattice.parents(engine::kGraphCompleteBipartite);
  EXPECT_EQ(parents.size(), 2u);
}

TEST(GraphClassLattice, DetectsTheBuiltinClasses) {
  const auto& lattice = GraphClassLattice::builtin();
  const auto classes_of = [&](const Graph& g) {
    std::set<std::string> names;
    const std::uint64_t mask = lattice.detect(g);
    for (GraphClassId id = 0; id < lattice.size(); ++id) {
      if ((mask >> id) & 1u) names.insert(lattice.name(id));
    }
    return names;
  };

  EXPECT_EQ(classes_of(complete_bipartite(2, 3)),
            (std::set<std::string>{"any", "bipartite", "complete-multipartite",
                                   "complete-bipartite"}));

  // K_{2,2,2}: complete multipartite, not bipartite (odd cycles through the
  // three parts).
  EXPECT_EQ(classes_of(complete_multipartite_graph({2, 2, 2})),
            (std::set<std::string>{"any", "complete-multipartite"}));

  // A triangle is K_{1,1,1}.
  Graph triangle(3);
  triangle.add_edge(0, 1);
  triangle.add_edge(1, 2);
  triangle.add_edge(0, 2);
  EXPECT_EQ(classes_of(triangle),
            (std::set<std::string>{"any", "complete-multipartite"}));

  // Two disjoint edges: bipartite only.
  Graph two_edges(4);
  two_edges.add_edge(0, 1);
  two_edges.add_edge(2, 3);
  EXPECT_EQ(classes_of(two_edges), (std::set<std::string>{"any", "bipartite"}));

  // C5: neither.
  Graph c5(5);
  for (int i = 0; i < 5; ++i) c5.add_edge(i, (i + 1) % 5);
  EXPECT_EQ(classes_of(c5), (std::set<std::string>{"any"}));

  // Edgeless: one part, vacuously everything.
  EXPECT_EQ(classes_of(Graph(4)),
            (std::set<std::string>{"any", "bipartite", "complete-multipartite",
                                   "complete-bipartite"}));
}

TEST(GraphClassLattice, CompleteMultipartiteDetectorEdgeCases) {
  EXPECT_TRUE(engine::is_complete_multipartite(Graph()));
  EXPECT_TRUE(engine::is_complete_multipartite(Graph(1)));
  EXPECT_TRUE(engine::is_complete_multipartite(complete_multipartite_graph({3, 1, 2})));
  EXPECT_TRUE(engine::is_complete_multipartite(complete_multipartite_graph({4})));

  // K2 plus an isolated vertex: the isolated vertex would need to be a part
  // of its own, but it misses both cross edges.
  Graph k2_plus(3);
  k2_plus.add_edge(0, 1);
  EXPECT_FALSE(engine::is_complete_multipartite(k2_plus));

  // P4 (path on 4): bipartite but not complete multipartite.
  Graph p4(4);
  p4.add_edge(0, 1);
  p4.add_edge(1, 2);
  p4.add_edge(2, 3);
  EXPECT_FALSE(engine::is_complete_multipartite(p4));

  // P3 IS K_{1,2}.
  Graph p3(3);
  p3.add_edge(0, 1);
  p3.add_edge(1, 2);
  EXPECT_TRUE(engine::is_complete_multipartite(p3));

  // Randomized closure check: whenever the complete-bipartite bit is on, the
  // whole ancestor set is on — detectors agree with the declared edges.
  Rng rng(61);
  const auto& lattice = GraphClassLattice::builtin();
  for (int trial = 0; trial < 40; ++trial) {
    const int a = 1 + static_cast<int>(rng.uniform_int(0, 3));
    const int b = 1 + static_cast<int>(rng.uniform_int(0, 3));
    const std::uint64_t mask = lattice.detect(complete_bipartite(a, b));
    for (GraphClassId id : {engine::kGraphAny, engine::kGraphBipartite,
                            engine::kGraphCompleteMultipartite,
                            engine::kGraphCompleteBipartite}) {
      EXPECT_TRUE((mask >> id) & 1u) << "a=" << a << " b=" << b << " id=" << id;
    }
  }
}

// A toy solver registered against the complete-multipartite class — the
// related-work registration path. It must become applicable to complete
// BIPARTITE instances purely through lattice subsumption.
class MultipartiteTestSolver final : public engine::Solver {
 public:
  MultipartiteTestSolver()
      : name_("cmp-test"), summary_("test solver for complete multipartite graphs") {
    caps_.models = engine::kModelUniform;
    caps_.graph = engine::kGraphCompleteMultipartite;
    caps_.guarantee = engine::Guarantee::kHeuristic;
    caps_.guarantee_label = "test";
  }

  const std::string& name() const override { return name_; }
  const std::string& summary() const override { return summary_; }
  const engine::SolverCapabilities& capabilities() const override { return caps_; }

  engine::SolveResult solve(const UniformInstance& inst,
                            const engine::SolveOptions&) const override {
    engine::SolveResult r;
    r.ok = true;
    r.solver = name_;
    r.guarantee = caps_.guarantee_label;
    // Round-robin over machines in part order is enough for a wiring test.
    r.schedule.machine_of.assign(static_cast<std::size_t>(inst.num_jobs()), 0);
    r.cmax = Rational(0);
    return r;
  }

 private:
  std::string name_;
  std::string summary_;
  engine::SolverCapabilities caps_;
};

TEST(GraphClassLattice, NewClassSolverIsAReachableRegistrationNotACoreEdit) {
  engine::SolverRegistry registry;
  registry.add(std::make_unique<MultipartiteTestSolver>());

  // Complete bipartite instance: subsumption makes the solver eligible.
  const auto kab = make_uniform_instance({1, 1, 1, 1, 1}, {2, 1},
                                         complete_bipartite(2, 3));
  const auto kab_profile = engine::probe(kab);
  std::string why;
  EXPECT_TRUE(engine::is_applicable(MultipartiteTestSolver().capabilities(),
                                    kab_profile, &why))
      << why;
  EXPECT_EQ(registry.applicable(kab_profile).size(), 1u);

  // Complete tripartite instance: eligible directly (and NOT bipartite, so
  // the paper's bipartite suite would refuse it).
  const auto k222 = make_uniform_instance(
      std::vector<std::int64_t>(6, 1), {1, 1, 1}, complete_multipartite_graph({2, 2, 2}));
  const auto k222_profile = engine::probe(k222);
  EXPECT_TRUE(k222_profile.has_class(engine::kGraphCompleteMultipartite));
  EXPECT_FALSE(k222_profile.has_class(engine::kGraphBipartite));
  EXPECT_EQ(registry.applicable(k222_profile).size(), 1u);

  // Sparse bipartite instance: NOT eligible, and the rejection names the
  // lattice class.
  Graph two_edges(4);
  two_edges.add_edge(0, 1);
  two_edges.add_edge(2, 3);
  const auto sparse =
      make_uniform_instance({1, 1, 1, 1}, {1, 1}, std::move(two_edges));
  EXPECT_FALSE(engine::is_applicable(MultipartiteTestSolver().capabilities(),
                                     engine::probe(sparse), &why));
  EXPECT_NE(why.find("complete-multipartite"), std::string::npos);
}

}  // namespace
}  // namespace bisched

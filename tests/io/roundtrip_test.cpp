// Round-trip and malformed-input coverage beyond format_test.cpp's basics:
// randomized unrelated instances (including zero times and isolated
// vertices), schedule extremes, and the specific parser error paths the
// engine's batch runner relies on for per-row diagnostics.
#include <gtest/gtest.h>

#include <sstream>

#include "io/format.hpp"
#include "random/generators.hpp"
#include "testing_util.hpp"
#include "util/prng.hpp"

namespace bisched {
namespace {

template <typename Instance>
ParsedInstance reparse(const Instance& inst) {
  std::ostringstream out;
  write_instance(out, inst);
  std::istringstream in(out.str());
  return parse_instance(in);
}

TEST(IoRoundTrip, RandomUnrelatedInstancesSurviveExactly) {
  Rng rng(2024);
  for (int trial = 0; trial < 25; ++trial) {
    const auto inst = testing::random_r2_instance(1 + static_cast<int>(rng.uniform_int(0, 12)),
                                                  1 + static_cast<int>(rng.uniform_int(0, 12)),
                                                  rng.uniform_int(0, 30), rng);
    const auto parsed = reparse(inst);
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    ASSERT_TRUE(parsed.unrelated.has_value());
    EXPECT_EQ(parsed.unrelated->times, inst.times);
    EXPECT_EQ(parsed.unrelated->conflicts.num_edges(), inst.conflicts.num_edges());
    EXPECT_EQ(parsed.unrelated->conflicts.num_vertices(), inst.conflicts.num_vertices());
  }
}

TEST(IoRoundTrip, ZeroTimesAndIsolatedVerticesSurvive) {
  // Zero processing times are legitimate for unrelated instances (Algorithm 3
  // creates zero-length dummy jobs); vertex 3 is isolated.
  Graph g(4);
  g.add_edge(0, 2);
  const auto inst = make_unrelated_instance({{0, 5, 0, 1}, {2, 0, 3, 0}}, std::move(g));
  const auto parsed = reparse(inst);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.unrelated->times, inst.times);
  EXPECT_EQ(parsed.unrelated->conflicts.num_vertices(), 4);
  EXPECT_TRUE(parsed.unrelated->conflicts.has_edge(0, 2));
}

TEST(IoRoundTrip, ManyMachineUnrelatedInstanceSurvives) {
  Rng rng(3);
  std::vector<std::vector<std::int64_t>> times(5, std::vector<std::int64_t>(7));
  for (auto& row : times) {
    for (auto& t : row) t = rng.uniform_int(0, 100);
  }
  const auto inst = make_unrelated_instance(std::move(times), Graph(7));
  const auto parsed = reparse(inst);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.unrelated->num_machines(), 5);
  EXPECT_EQ(parsed.unrelated->times, inst.times);
}

TEST(IoRoundTrip, SchedulesSurviveIncludingEmpty) {
  for (const Schedule& schedule :
       {Schedule{}, Schedule{{0, 3, 1, 0, 2}}, Schedule{{7}}}) {
    std::ostringstream out;
    write_schedule(out, schedule);
    std::istringstream in(out.str());
    std::string error;
    const auto parsed = parse_schedule(in, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->machine_of, schedule.machine_of);
  }
}

TEST(IoRoundTrip, UniformRoundTripPreservesSortedSpeeds) {
  // make_uniform_instance sorts speeds non-increasingly; the writer emits the
  // sorted order, so write -> parse is a fixed point.
  Rng rng(4);
  const auto inst = testing::random_uniform_instance(6, 5, 4, 9, 6, rng);
  const auto parsed = reparse(inst);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.uniform->p, inst.p);
  EXPECT_EQ(parsed.uniform->speeds, inst.speeds);

  std::ostringstream first, second;
  write_instance(first, inst);
  write_instance(second, *parsed.uniform);
  EXPECT_EQ(first.str(), second.str());
}

TEST(IoMalformed, UnrelatedErrorPaths) {
  const auto expect_error = [](const std::string& text, const std::string& needle) {
    std::istringstream in(text);
    const auto parsed = parse_instance(in);
    EXPECT_FALSE(parsed.ok()) << text;
    EXPECT_NE(parsed.error.find(needle), std::string::npos)
        << "error '" << parsed.error << "' does not mention '" << needle << "'";
  };
  // Truncated times matrix.
  expect_error("bisched unrelated v1\njobs 3\nmachines 2\ntimes\n1 2 3\n4 5\n",
               "times row");
  // Negative processing time.
  expect_error("bisched unrelated v1\njobs 2\nmachines 1\ntimes\n1 -2\nedges 0\n",
               ">= 0");
  // Edge endpoint out of range.
  expect_error(
      "bisched unrelated v1\njobs 2\nmachines 1\ntimes\n1 2\nedges 1\n0 5\n",
      "bad edge");
  // Self-loop.
  expect_error(
      "bisched unrelated v1\njobs 2\nmachines 1\ntimes\n1 2\nedges 1\n1 1\n",
      "bad edge");
  // Zero machines.
  expect_error("bisched unrelated v1\njobs 1\nmachines 0\ntimes\nedges 0\n",
               "out of range");
  // Unknown model keyword.
  expect_error("bisched identical v1\njobs 1\n", "uniform");
  // Non-numeric token where a count is expected.
  expect_error("bisched unrelated v1\njobs x\n", "integer");
}

TEST(IoMalformed, ScheduleErrorPaths) {
  const auto expect_error = [](const std::string& text, const std::string& needle) {
    std::istringstream in(text);
    std::string error;
    const auto parsed = parse_schedule(in, &error);
    EXPECT_FALSE(parsed.has_value()) << text;
    EXPECT_NE(error.find(needle), std::string::npos)
        << "error '" << error << "' does not mention '" << needle << "'";
  };
  expect_error("bisched schedule v1\njobs 2\nmachine_of 0\n", "machine_of");
  expect_error("bisched schedule v1\njobs 1\nmachine_of -3\n", "out of range");
  expect_error("bisched schedule v2\n", "v1");
  expect_error("", "bisched");
}

}  // namespace
}  // namespace bisched

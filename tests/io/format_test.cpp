#include "io/format.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "random/generators.hpp"
#include "testing_util.hpp"
#include "util/prng.hpp"

namespace bisched {
namespace {

TEST(IoFormat, ParseUniformBasic) {
  std::istringstream in(
      "# a comment\n"
      "bisched uniform v1\n"
      "jobs 3\n"
      "p 5 1 2\n"
      "speeds 2\n"
      "4 1\n"
      "edges 1\n"
      "0 2\n");
  const auto parsed = parse_instance(in);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_TRUE(parsed.uniform.has_value());
  EXPECT_EQ(parsed.uniform->num_jobs(), 3);
  EXPECT_EQ(parsed.uniform->speeds, (std::vector<std::int64_t>{4, 1}));
  EXPECT_TRUE(parsed.uniform->conflicts.has_edge(0, 2));
}

TEST(IoFormat, ParseUnrelatedBasic) {
  std::istringstream in(
      "bisched unrelated v1\n"
      "jobs 2\n"
      "machines 2\n"
      "times\n"
      "1 2\n"
      "3 0\n"
      "edges 0\n");
  const auto parsed = parse_instance(in);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_TRUE(parsed.unrelated.has_value());
  EXPECT_EQ(parsed.unrelated->times[1][0], 3);
}

TEST(IoFormat, UniformRoundTrip) {
  Rng rng(5);
  for (int iter = 0; iter < 10; ++iter) {
    const auto inst = testing::random_uniform_instance(4, 5, 3, 9, 6, rng);
    std::ostringstream out;
    write_instance(out, inst);
    std::istringstream in(out.str());
    const auto parsed = parse_instance(in);
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    ASSERT_TRUE(parsed.uniform.has_value());
    EXPECT_EQ(parsed.uniform->p, inst.p);
    EXPECT_EQ(parsed.uniform->speeds, inst.speeds);
    EXPECT_EQ(parsed.uniform->conflicts.num_edges(), inst.conflicts.num_edges());
    // Re-serialize: identical text.
    std::ostringstream out2;
    write_instance(out2, *parsed.uniform);
    EXPECT_EQ(out.str(), out2.str());
  }
}

TEST(IoFormat, UnrelatedRoundTrip) {
  Rng rng(6);
  for (int iter = 0; iter < 10; ++iter) {
    const auto inst = testing::random_r2_instance(4, 4, 20, rng);
    std::ostringstream out;
    write_instance(out, inst);
    std::istringstream in(out.str());
    const auto parsed = parse_instance(in);
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    ASSERT_TRUE(parsed.unrelated.has_value());
    EXPECT_EQ(parsed.unrelated->times, inst.times);
  }
}

TEST(IoFormat, ScheduleRoundTrip) {
  Schedule s{{0, 2, 1, 0}};
  std::ostringstream out;
  write_schedule(out, s);
  std::istringstream in(out.str());
  std::string error;
  const auto parsed = parse_schedule(in, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->machine_of, s.machine_of);
}

TEST(IoFormat, ErrorsAreDiagnosable) {
  {
    std::istringstream in("not-bisched");
    const auto parsed = parse_instance(in);
    EXPECT_FALSE(parsed.ok());
    EXPECT_NE(parsed.error.find("bisched"), std::string::npos);
  }
  {
    std::istringstream in("bisched uniform v1\njobs 2\np 1\n");  // too few p
    EXPECT_FALSE(parse_instance(in).ok());
  }
  {
    std::istringstream in("bisched uniform v1\njobs 2\np 1 1\nspeeds 1\n0\nedges 0\n");
    const auto parsed = parse_instance(in);  // zero speed
    EXPECT_FALSE(parsed.ok());
    EXPECT_NE(parsed.error.find("speeds"), std::string::npos);
  }
  {
    std::istringstream in(
        "bisched uniform v1\njobs 2\np 1 1\nspeeds 1\n3\nedges 1\n0 5\n");
    const auto parsed = parse_instance(in);  // edge endpoint out of range
    EXPECT_FALSE(parsed.ok());
    EXPECT_NE(parsed.error.find("edge"), std::string::npos);
  }
  {
    std::istringstream in("bisched uniform v1\njobs 2\np 1 1\nspeeds 1\n3\nedges 1\n1 1\n");
    EXPECT_FALSE(parse_instance(in).ok());  // self-loop
  }
  {
    std::istringstream in("bisched schedule v1\njobs 2\nmachine_of 0 -1\n");
    std::string error;
    EXPECT_FALSE(parse_schedule(in, &error).has_value());
    EXPECT_FALSE(error.empty());
  }
}

TEST(IoFormat, CommentsAndWhitespaceTolerated) {
  std::istringstream in(
      "bisched   uniform\n"
      "  v1 # trailing comment\n"
      "jobs 1 # one job\n"
      "p 7\n"
      "speeds 1\n"
      "2\n"
      "edges 0\n");
  const auto parsed = parse_instance(in);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.uniform->p[0], 7);
}

// Fuzz: byte-level mutations of a valid serialization must never crash the
// parser — it either parses (mutation hit whitespace/comments) or reports an
// error string. The parser is the one component that consumes untrusted
// input, so it must not BISCHED_CHECK-abort on malformed data.
TEST(IoFormatFuzz, MutatedInputsNeverCrash) {
  Rng rng(1234);
  const auto inst = testing::random_uniform_instance(4, 4, 3, 9, 4, rng);
  std::ostringstream out;
  write_instance(out, inst);
  const std::string base = out.str();

  const char charset[] = "0123456789 -azbc#\n";
  for (int iter = 0; iter < 500; ++iter) {
    std::string mutated = base;
    const int mutations = 1 + static_cast<int>(rng.uniform_int(0, 4));
    for (int k = 0; k < mutations; ++k) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(mutated.size()) - 1));
      mutated[pos] = charset[rng.uniform_int(0, static_cast<std::int64_t>(sizeof charset) - 2)];
    }
    std::istringstream in(mutated);
    const auto parsed = parse_instance(in);  // must return, never abort
    if (parsed.ok()) {
      EXPECT_TRUE(parsed.uniform.has_value() || parsed.unrelated.has_value());
    } else {
      EXPECT_FALSE(parsed.error.empty());
    }
  }
}

TEST(IoFormatFuzz, TruncatedInputsNeverCrash) {
  Rng rng(99);
  const auto inst = testing::random_r2_instance(3, 3, 9, rng);
  std::ostringstream out;
  write_instance(out, inst);
  const std::string base = out.str();
  for (std::size_t len = 0; len < base.size(); len += 3) {
    std::istringstream in(base.substr(0, len));
    const auto parsed = parse_instance(in);
    EXPECT_FALSE(parsed.ok());  // truncation always breaks something
    EXPECT_FALSE(parsed.error.empty());
  }
}

TEST(IoFormat, NegativeTimeRejected) {
  std::istringstream in(
      "bisched unrelated v1\njobs 1\nmachines 1\ntimes\n-2\nedges 0\n");
  const auto parsed = parse_instance(in);
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error.find("times"), std::string::npos);
}

}  // namespace
}  // namespace bisched

#include "sched/lower_bounds.hpp"

#include <gtest/gtest.h>

#include "core/exact_bb.hpp"
#include "random/generators.hpp"
#include "testing_util.hpp"
#include "util/prng.hpp"

namespace bisched {
namespace {

TEST(LowerBounds, PmaxBound) {
  const auto inst = make_uniform_instance({7, 1}, {2, 1}, Graph(2));
  EXPECT_EQ(lb_pmax(inst), Rational(7, 2));
}

TEST(LowerBounds, CoverAllBound) {
  // total 8, speeds (3,1): t=2 gives caps (6,2)=8.
  const auto inst = make_uniform_instance({4, 4}, {3, 1}, Graph(2));
  EXPECT_EQ(lb_cover_all(inst), Rational(2));
}

TEST(LowerBounds, OffMachine1UsesIndependentSet) {
  // K_{2,2} with unit jobs on speeds (100, 1, 1): M1 can hold at most one
  // side (2 jobs); the other 2 jobs need the two speed-1 machines >= 1 time.
  const auto inst =
      make_uniform_instance({1, 1, 1, 1}, {100, 1, 1}, complete_bipartite(2, 2));
  const auto off1 = lb_off_machine1(inst);
  ASSERT_TRUE(off1.has_value());
  EXPECT_EQ(*off1, Rational(1));
  // The cover-all bound alone would be tiny (4/102-ish); off-M1 dominates.
  EXPECT_TRUE(lb_cover_all(inst) < *off1);
  EXPECT_EQ(lower_bound(inst), Rational(1));
}

TEST(LowerBounds, OffMachine1NulloptForSingleMachine) {
  const auto inst = make_uniform_instance({1}, {1}, Graph(1));
  EXPECT_FALSE(lb_off_machine1(inst).has_value());
  EXPECT_EQ(lower_bound(inst), Rational(1));
}

TEST(LowerBounds, NeverExceedsOptimum) {
  Rng rng(2025);
  for (int iter = 0; iter < 40; ++iter) {
    const auto inst = testing::random_uniform_instance(
        2 + static_cast<int>(rng.uniform_int(0, 3)), 2 + static_cast<int>(rng.uniform_int(0, 3)),
        2 + static_cast<int>(rng.uniform_int(0, 2)), 6, 4, rng);
    const auto exact = exact_uniform_bb(inst);
    ASSERT_TRUE(exact.feasible);
    const Rational lb = lower_bound(inst);
    EXPECT_TRUE(lb <= exact.cmax)
        << "lb=" << lb.to_string() << " opt=" << exact.cmax.to_string();
  }
}

TEST(LowerBounds, TightOnSymmetricInstances) {
  // n unit jobs, no conflicts, m unit machines: LB = ceil(n/m) = OPT.
  const auto inst = make_identical_instance(std::vector<std::int64_t>(6, 1), 3, Graph(6));
  EXPECT_EQ(lower_bound(inst), Rational(2));
  const auto exact = exact_uniform_bb(inst);
  ASSERT_TRUE(exact.feasible);
  EXPECT_EQ(exact.cmax, Rational(2));
}

}  // namespace
}  // namespace bisched

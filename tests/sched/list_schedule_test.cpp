#include "sched/list_schedule.hpp"

#include <gtest/gtest.h>

#include "random/generators.hpp"
#include "testing_util.hpp"
#include "util/prng.hpp"

namespace bisched {
namespace {

TEST(ListSchedule, BalancesOnEqualSpeeds) {
  const auto inst = make_identical_instance({5, 4, 3, 2, 1}, 3, Graph(5));
  Schedule s;
  s.machine_of.assign(5, -1);
  std::vector<std::int64_t> loads(3, 0);
  const std::vector<int> jobs{0, 1, 2, 3, 4};
  const std::vector<int> machines{0, 1, 2};
  list_schedule_uniform(inst, jobs, machines, s, loads);
  // LPT on identical machines: 5 | 4+1 | 3+2 = loads {5,5,5}.
  EXPECT_EQ(loads, (std::vector<std::int64_t>{5, 5, 5}));
  EXPECT_EQ(makespan(inst, s), Rational(5));
}

TEST(ListSchedule, PrefersFasterMachine) {
  const auto inst = make_uniform_instance({6, 6}, {3, 1}, Graph(2));
  Schedule s;
  s.machine_of.assign(2, -1);
  std::vector<std::int64_t> loads(2, 0);
  list_schedule_uniform(inst, std::vector<int>{0, 1}, std::vector<int>{0, 1}, s, loads);
  // First job -> M1 (finish 2 vs 6). Second: M1 finishes at 4, M2 at 6 -> M1.
  EXPECT_EQ(s.machine_of, (std::vector<int>{0, 0}));
  EXPECT_EQ(makespan(inst, s), Rational(4));
}

TEST(ListSchedule, RespectsMachineSubset) {
  const auto inst = make_uniform_instance({1, 1, 1}, {10, 1, 1}, Graph(3));
  Schedule s;
  s.machine_of.assign(3, -1);
  std::vector<std::int64_t> loads(3, 0);
  list_schedule_uniform(inst, std::vector<int>{0, 1, 2}, std::vector<int>{1, 2}, s, loads);
  for (int j = 0; j < 3; ++j) EXPECT_NE(s.machine_of[j], 0);  // fastest never used
  EXPECT_EQ(loads[0], 0);
}

TEST(ListSchedule, AccumulatesOntoSeededLoads) {
  const auto inst = make_uniform_instance({3}, {1, 1}, Graph(1));
  Schedule s;
  s.machine_of.assign(1, -1);
  std::vector<std::int64_t> loads{10, 0};  // machine 0 pre-loaded
  list_schedule_uniform(inst, std::vector<int>{0}, std::vector<int>{0, 1}, s, loads);
  EXPECT_EQ(s.machine_of[0], 1);  // goes to the idle machine
  EXPECT_EQ(loads, (std::vector<std::int64_t>{10, 3}));
}

TEST(ListSchedule, EmptyJobListIsNoop) {
  const auto inst = make_uniform_instance({1}, {1}, Graph(1));
  Schedule s;
  s.machine_of.assign(1, -1);
  std::vector<std::int64_t> loads(1, 0);
  list_schedule_uniform(inst, {}, {}, s, loads);
  EXPECT_EQ(loads[0], 0);
}

TEST(GreedyConflictLpt, ValidOnRandomBipartite) {
  Rng rng(42);
  for (int iter = 0; iter < 30; ++iter) {
    const auto inst = testing::random_uniform_instance(
        4 + static_cast<int>(rng.uniform_int(0, 4)), 4 + static_cast<int>(rng.uniform_int(0, 4)),
        3 + static_cast<int>(rng.uniform_int(0, 3)), 9, 4, rng);
    Schedule s;
    if (greedy_conflict_lpt(inst, s)) {
      EXPECT_EQ(validate(inst, s), ScheduleStatus::kValid);
    }
  }
}

TEST(GreedyConflictLpt, FailsWhenMachinesTooFew) {
  // Single machine, one conflict edge: no feasible greedy placement.
  Graph g(2);
  g.add_edge(0, 1);
  const auto inst = make_uniform_instance({1, 1}, {1}, std::move(g));
  Schedule s;
  EXPECT_FALSE(greedy_conflict_lpt(inst, s));
}

TEST(GreedyConflictLpt, TwoMachinesSplitEdge) {
  Graph g(2);
  g.add_edge(0, 1);
  const auto inst = make_uniform_instance({5, 5}, {1, 1}, std::move(g));
  Schedule s;
  ASSERT_TRUE(greedy_conflict_lpt(inst, s));
  EXPECT_NE(s.machine_of[0], s.machine_of[1]);
  EXPECT_EQ(makespan(inst, s), Rational(5));
}

}  // namespace
}  // namespace bisched

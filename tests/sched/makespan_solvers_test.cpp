#include "sched/makespan_solvers.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/prng.hpp"

namespace bisched {
namespace {

std::vector<R2Job> random_jobs(int n, std::int64_t tmax, Rng& rng) {
  std::vector<R2Job> jobs(static_cast<std::size_t>(n));
  for (auto& j : jobs) {
    j.p1 = rng.uniform_int(0, tmax);
    j.p2 = rng.uniform_int(0, tmax);
  }
  return jobs;
}

void expect_consistent(const R2Result& r, std::span<const R2Job> jobs) {
  std::int64_t l1 = 0, l2 = 0;
  ASSERT_EQ(r.on_machine2.size(), jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    (r.on_machine2[j] ? l2 : l1) += r.on_machine2[j] ? jobs[j].p2 : jobs[j].p1;
  }
  EXPECT_EQ(l1, r.load1);
  EXPECT_EQ(l2, r.load2);
  EXPECT_EQ(std::max(l1, l2), r.cmax);
}

TEST(R2Greedy, PicksMinMachinePerJob) {
  const std::vector<R2Job> jobs{{3, 5}, {9, 2}, {4, 4}};
  const auto r = r2_greedy(jobs);
  EXPECT_EQ(r.on_machine2[0], 0);
  EXPECT_EQ(r.on_machine2[1], 1);
  EXPECT_EQ(r.on_machine2[2], 0);  // tie -> machine 1
  expect_consistent(r, jobs);
}

TEST(R2Greedy, WithinTwiceOptimal) {
  Rng rng(1);
  for (int iter = 0; iter < 40; ++iter) {
    const auto jobs = random_jobs(1 + static_cast<int>(rng.uniform_int(0, 9)), 20, rng);
    const auto greedy = r2_greedy(jobs);
    const auto exact = r2_exact(jobs);
    expect_consistent(greedy, jobs);
    EXPECT_LE(greedy.cmax, 2 * exact.cmax + 1);  // +1 covers cmax==0 corner
  }
}

TEST(R2Exact, KnownInstances) {
  // Perfectly splittable.
  const std::vector<R2Job> jobs{{2, 2}, {2, 2}};
  EXPECT_EQ(r2_exact(jobs).cmax, 2);
  // One job dominates.
  const std::vector<R2Job> jobs2{{10, 1}};
  EXPECT_EQ(r2_exact(jobs2).cmax, 1);
  // Empty.
  EXPECT_EQ(r2_exact(std::vector<R2Job>{}).cmax, 0);
  // All zero.
  const std::vector<R2Job> zeros{{0, 0}, {0, 0}};
  EXPECT_EQ(r2_exact(zeros).cmax, 0);
}

TEST(R2Exact, MatchesBruteForce) {
  Rng rng(7);
  for (int iter = 0; iter < 60; ++iter) {
    const int n = 1 + static_cast<int>(rng.uniform_int(0, 9));
    const auto jobs = random_jobs(n, 15, rng);
    std::vector<std::vector<std::int64_t>> times(2, std::vector<std::int64_t>(n));
    for (int j = 0; j < n; ++j) {
      times[0][static_cast<std::size_t>(j)] = jobs[static_cast<std::size_t>(j)].p1;
      times[1][static_cast<std::size_t>(j)] = jobs[static_cast<std::size_t>(j)].p2;
    }
    const auto exact = r2_exact(jobs);
    expect_consistent(exact, jobs);
    EXPECT_EQ(exact.cmax, rm_bruteforce_makespan(times));
  }
}

class R2FptasEps : public ::testing::TestWithParam<double> {};

TEST_P(R2FptasEps, WithinGuaranteeOfExact) {
  const double eps = GetParam();
  Rng rng(static_cast<std::uint64_t>(eps * 1000) + 11);
  for (int iter = 0; iter < 30; ++iter) {
    const auto jobs = random_jobs(1 + static_cast<int>(rng.uniform_int(0, 11)), 50, rng);
    const auto exact = r2_exact(jobs);
    const auto approx = r2_fptas(jobs, eps);
    expect_consistent(approx, jobs);
    // cmax <= (1+eps) * OPT, exact integer arithmetic with rounding slack.
    const double bound = (1.0 + eps) * static_cast<double>(exact.cmax) + 1e-9;
    EXPECT_LE(static_cast<double>(approx.cmax), bound)
        << "eps=" << eps << " opt=" << exact.cmax << " got=" << approx.cmax;
    EXPECT_GE(approx.cmax, exact.cmax);
  }
}

INSTANTIATE_TEST_SUITE_P(EpsSweep, R2FptasEps,
                         ::testing::Values(1.0, 0.5, 0.25, 0.1, 0.05, 0.01));

TEST(R2Fptas, ExactWhenEpsTiny) {
  Rng rng(5);
  for (int iter = 0; iter < 20; ++iter) {
    const auto jobs = random_jobs(1 + static_cast<int>(rng.uniform_int(0, 7)), 12, rng);
    const auto exact = r2_exact(jobs);
    // eps < 1 / (sum of all times) forces delta = 1 -> exact.
    const auto approx = r2_fptas(jobs, 1e-9);
    EXPECT_EQ(approx.cmax, exact.cmax);
  }
}

TEST(R2Fptas, HandlesZeroJobs) {
  const std::vector<R2Job> zeros{{0, 0}, {0, 7}};
  const auto r = r2_fptas(zeros, 0.5);
  EXPECT_EQ(r.cmax, 0);
}

TEST(RmBruteForce, ThreeMachines) {
  // Jobs with a clear optimal spread.
  const std::vector<std::vector<std::int64_t>> times{
      {1, 10, 10},
      {10, 1, 10},
      {10, 10, 1},
  };
  std::vector<int> assignment;
  EXPECT_EQ(rm_bruteforce_makespan(times, &assignment), 1);
  EXPECT_EQ(assignment, (std::vector<int>{0, 1, 2}));
}

TEST(RmBruteForce, SingleMachineSums) {
  const std::vector<std::vector<std::int64_t>> times{{2, 3, 4}};
  EXPECT_EQ(rm_bruteforce_makespan(times), 9);
}

}  // namespace
}  // namespace bisched

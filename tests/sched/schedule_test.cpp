#include "sched/schedule.hpp"

#include <gtest/gtest.h>

#include "random/generators.hpp"

namespace bisched {
namespace {

UniformInstance demo_uniform() {
  Graph g(3);
  g.add_edge(0, 1);
  return make_uniform_instance({2, 3, 4}, {2, 1}, std::move(g));
}

TEST(Validate, DetectsAllStatuses) {
  const auto inst = demo_uniform();
  EXPECT_EQ(validate(inst, Schedule{{0, 1, 0}}), ScheduleStatus::kValid);
  EXPECT_EQ(validate(inst, Schedule{{0, 1}}), ScheduleStatus::kWrongJobCount);
  EXPECT_EQ(validate(inst, Schedule{{0, 2, 0}}), ScheduleStatus::kMachineOutOfRange);
  EXPECT_EQ(validate(inst, Schedule{{0, -1, 0}}), ScheduleStatus::kMachineOutOfRange);
  EXPECT_EQ(validate(inst, Schedule{{0, 0, 1}}), ScheduleStatus::kConflictViolated);
}

TEST(Validate, StatusToString) {
  EXPECT_EQ(to_string(ScheduleStatus::kValid), "valid");
  EXPECT_EQ(to_string(ScheduleStatus::kConflictViolated), "conflict violated");
}

TEST(MakespanUniform, ExactRational) {
  const auto inst = demo_uniform();
  // M1 (speed 2): jobs 0,2 -> load 6 -> 3; M2 (speed 1): job 1 -> 3.
  const Schedule s{{0, 1, 0}};
  EXPECT_EQ(makespan(inst, s), Rational(3));
  const auto loads = machine_loads(inst, s);
  EXPECT_EQ(loads, (std::vector<std::int64_t>{6, 3}));
}

TEST(MakespanUniform, FractionalResult) {
  const auto inst = make_uniform_instance({5}, {2}, Graph(1));
  EXPECT_EQ(makespan(inst, Schedule{{0}}), Rational(5, 2));
}

TEST(MakespanUnrelated, PerMachineTimes) {
  Graph g(3);
  g.add_edge(0, 2);
  const auto inst = make_unrelated_instance({{1, 10, 2}, {5, 1, 5}}, std::move(g));
  const Schedule s{{0, 0, 1}};  // conflicting jobs 0 and 2 separated
  EXPECT_EQ(validate(inst, s), ScheduleStatus::kValid);
  EXPECT_EQ(makespan(inst, s), 11);
  EXPECT_EQ(machine_loads(inst, s), (std::vector<std::int64_t>{11, 5}));
  EXPECT_EQ(validate(inst, Schedule{{0, 1, 0}}), ScheduleStatus::kConflictViolated);
}

TEST(MakespanUniform, EmptyInstance) {
  const auto inst = make_uniform_instance({}, {1, 1}, Graph(0));
  EXPECT_EQ(makespan(inst, Schedule{{}}), Rational(0));
}

}  // namespace
}  // namespace bisched

// Differential tests for the optimized R2/R3 DP kernels: the arena-backed,
// window-pruned, SIMD-dispatched kernels must return *bit-identical* results
// — same cmax, same loads, same per-job assignment — as the seed kernels
// preserved in tests/reference_kernels.hpp, across randomized instances that
// exercise the edge cases (zero processing times, which flip the tie-break
// priority; duplicate times, which create ties; tiny and empty instances;
// and eps values from coarse to fine, which move the scaled-size-0
// boundary).
//
// Every check runs at EVERY dispatch level this host supports (scalar, AVX2,
// AVX-512 — forced through the BISCHED_SIMD override and a refresh) and in
// BOTH probe modes (value-only search probes vs the eager choice-writing
// probes), so the bit-identity contract covers the full dispatch × mode
// matrix, not just whatever this CPU happens to resolve to.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "reference_kernels.hpp"
#include "sched/makespan_solvers.hpp"
#include "sched/simd_dispatch.hpp"
#include "util/prng.hpp"

namespace bisched {
namespace {

// Forces the dispatch level for a scope: sets BISCHED_SIMD and re-resolves,
// restoring detection-only dispatch on the way out.
class ForcedSimd {
 public:
  explicit ForcedSimd(SimdLevel level) {
    ::setenv("BISCHED_SIMD", to_string(level), 1);
    EXPECT_EQ(simd_refresh_level(), level);
  }
  ~ForcedSimd() {
    ::unsetenv("BISCHED_SIMD");
    simd_refresh_level();
  }
  ForcedSimd(const ForcedSimd&) = delete;
  ForcedSimd& operator=(const ForcedSimd&) = delete;
};

// Runs `body` once per dispatch level this host can execute.
template <typename Body>
void for_each_simd_level(Body&& body) {
  for (const SimdLevel level : simd_available_levels()) {
    ForcedSimd forced(level);
    body(to_string(level));
  }
}

constexpr ProbeMode kModes[] = {ProbeMode::kValueOnly, ProbeMode::kEager};

const char* mode_name(ProbeMode mode) {
  return mode == ProbeMode::kValueOnly ? "value-only" : "eager";
}

std::vector<R2Job> random_r2_jobs(int n, std::int64_t tmin, std::int64_t tmax, Rng& rng) {
  std::vector<R2Job> jobs(static_cast<std::size_t>(n));
  for (auto& job : jobs) {
    job.p1 = rng.uniform_int(tmin, tmax);
    job.p2 = rng.uniform_int(tmin, tmax);
  }
  return jobs;
}

std::vector<R3Job> random_r3_jobs(int n, std::int64_t tmin, std::int64_t tmax, Rng& rng) {
  std::vector<R3Job> jobs(static_cast<std::size_t>(n));
  for (auto& job : jobs) {
    job.p1 = rng.uniform_int(tmin, tmax);
    job.p2 = rng.uniform_int(tmin, tmax);
    job.p3 = rng.uniform_int(tmin, tmax);
  }
  return jobs;
}

void expect_r2_identical(const R2Result& want, const R2Result& got, const char* what,
                         const char* isa, const char* mode, int trial) {
  EXPECT_EQ(want.cmax, got.cmax) << what << " " << isa << " " << mode << " trial "
                                 << trial;
  EXPECT_EQ(want.load1, got.load1) << what << " " << isa << " " << mode << " trial "
                                   << trial;
  EXPECT_EQ(want.load2, got.load2) << what << " " << isa << " " << mode << " trial "
                                   << trial;
  EXPECT_EQ(want.on_machine2, got.on_machine2)
      << what << " " << isa << " " << mode << " trial " << trial;
}

void expect_r3_identical(const R3Result& want, const R3Result& got, const char* isa,
                         const char* mode, int trial) {
  EXPECT_EQ(want.cmax, got.cmax) << isa << " " << mode << " trial " << trial;
  EXPECT_EQ(want.loads[0], got.loads[0]) << isa << " " << mode << " trial " << trial;
  EXPECT_EQ(want.loads[1], got.loads[1]) << isa << " " << mode << " trial " << trial;
  EXPECT_EQ(want.loads[2], got.loads[2]) << isa << " " << mode << " trial " << trial;
  EXPECT_EQ(want.machine_of, got.machine_of)
      << isa << " " << mode << " trial " << trial;
}

TEST(KernelDifferential, R2ExactMatchesSeedBitForBitAtEveryLevel) {
  for_each_simd_level([](const char* isa) {
    Rng rng(1001);
    for (int trial = 0; trial < 40; ++trial) {
      const int n = 1 + static_cast<int>(rng.uniform_int(0, 30));
      // tmin 0 exercises zero-size jobs (the s1 == 0 tie-break flip); a small
      // range forces many exact ties.
      const std::int64_t tmax = 1 + rng.uniform_int(0, 40);
      const auto jobs = random_r2_jobs(n, 0, tmax, rng);
      const R2Result want = reference::r2_exact(jobs);
      for (const ProbeMode mode : kModes) {
        expect_r2_identical(want, r2_exact(jobs, mode), "r2_exact", isa,
                            mode_name(mode), trial);
      }
    }
  });
}

TEST(KernelDifferential, R2FptasMatchesSeedBitForBitAtEveryLevel) {
  for_each_simd_level([](const char* isa) {
    Rng rng(1002);
    const double epsilons[] = {1.0, 0.5, 0.2, 0.1, 0.03};
    for (int trial = 0; trial < 40; ++trial) {
      const int n = 1 + static_cast<int>(rng.uniform_int(0, 40));
      const std::int64_t tmax = 1 + rng.uniform_int(0, 200);
      const auto jobs = random_r2_jobs(n, 0, tmax, rng);
      const double eps = epsilons[trial % 5];
      const R2Result want = reference::r2_fptas(jobs, eps);
      for (const ProbeMode mode : kModes) {
        expect_r2_identical(want, r2_fptas(jobs, eps, mode), "r2_fptas", isa,
                            mode_name(mode), trial);
      }
    }
  });
}

TEST(KernelDifferential, R2WideRowsExerciseVectorBlocks) {
  // Large processing times widen the scaled DP row past the 4- and 8-lane
  // block thresholds so the AVX2/AVX-512 main loops (not just their scalar
  // head/tail) run; fine eps keeps the budget — and therefore the row — wide.
  for_each_simd_level([](const char* isa) {
    Rng rng(1005);
    for (int trial = 0; trial < 6; ++trial) {
      const auto jobs = random_r2_jobs(48, 50, 3000, rng);
      const R2Result want = reference::r2_fptas(jobs, 0.02);
      for (const ProbeMode mode : kModes) {
        expect_r2_identical(want, r2_fptas(jobs, 0.02, mode), "r2_wide", isa,
                            mode_name(mode), trial);
      }
    }
  });
}

TEST(KernelDifferential, R2EdgeCasesAtEveryLevel) {
  // Empty, single-job, all-zero, and identical-jobs instances.
  for_each_simd_level([](const char* isa) {
    for (const ProbeMode mode : kModes) {
      const char* m = mode_name(mode);
      const std::vector<R2Job> empty;
      expect_r2_identical(reference::r2_fptas(empty, 0.1), r2_fptas(empty, 0.1, mode),
                          "empty", isa, m, 0);

      const std::vector<R2Job> zeros(5, R2Job{0, 0});
      expect_r2_identical(reference::r2_fptas(zeros, 0.1), r2_fptas(zeros, 0.1, mode),
                          "zeros", isa, m, 0);
      expect_r2_identical(reference::r2_exact(zeros), r2_exact(zeros, mode), "zeros",
                          isa, m, 0);

      const std::vector<R2Job> same(7, R2Job{4, 4});
      expect_r2_identical(reference::r2_exact(same), r2_exact(same, mode), "same", isa,
                          m, 0);
      expect_r2_identical(reference::r2_fptas(same, 0.5), r2_fptas(same, 0.5, mode),
                          "same", isa, m, 0);

      const std::vector<R2Job> one = {{9, 2}};
      expect_r2_identical(reference::r2_exact(one), r2_exact(one, mode), "one", isa, m,
                          0);
    }
  });
}

TEST(KernelDifferential, R3FptasMatchesSeedBitForBitAtEveryLevel) {
  for_each_simd_level([](const char* isa) {
    Rng rng(1003);
    const double epsilons[] = {1.0, 0.6, 0.4, 0.25};
    for (int trial = 0; trial < 30; ++trial) {
      const int n = 1 + static_cast<int>(rng.uniform_int(0, 14));
      const std::int64_t tmax = 1 + rng.uniform_int(0, 60);
      const auto jobs = random_r3_jobs(n, 0, tmax, rng);
      const double eps = epsilons[trial % 4];
      const R3Result want = reference::r3_fptas(jobs, eps);
      for (const ProbeMode mode : kModes) {
        expect_r3_identical(want, r3_fptas(jobs, eps, mode), isa, mode_name(mode),
                            trial);
      }
    }
  });
}

TEST(KernelDifferential, R3ZeroSizeJobsFlipTieOrder) {
  // Scaled sizes of 0 reorder the seed's write sequence per machine; feed
  // literal zeros so every priority permutation is exercised.
  Rng rng(1004);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 1 + static_cast<int>(rng.uniform_int(0, 10));
    std::vector<R3Job> jobs(static_cast<std::size_t>(n));
    for (auto& job : jobs) {
      job.p1 = rng.uniform_int(0, 3);
      job.p2 = rng.uniform_int(0, 3);
      job.p3 = rng.uniform_int(0, 3);
    }
    const R3Result want = reference::r3_fptas(jobs, 0.3);
    for (const ProbeMode mode : kModes) {
      expect_r3_identical(want, r3_fptas(jobs, 0.3, mode), "default", mode_name(mode),
                          trial);
    }
  }
}

TEST(KernelDifferential, ValueOnlyAndEagerAgreeOnLargeInstances) {
  // The two probe modes must agree with each other (not just with the seed)
  // on instances big enough that the binary search runs many rejected probes.
  Rng rng(1006);
  for (int trial = 0; trial < 4; ++trial) {
    const auto jobs = random_r2_jobs(200, 1, 5000, rng);
    const R2Result eager = r2_fptas(jobs, 0.05, ProbeMode::kEager);
    const R2Result value_only = r2_fptas(jobs, 0.05, ProbeMode::kValueOnly);
    expect_r2_identical(eager, value_only, "modes", "default", "cross", trial);
  }
}

}  // namespace
}  // namespace bisched

// Differential tests for the PR-3 kernel rewrite: the arena-backed,
// window-pruned R2/R3 DP kernels must return *bit-identical* results — same
// cmax, same loads, same per-job assignment — as the seed kernels preserved
// in tests/reference_kernels.hpp, across randomized instances that exercise
// the rewrite's edge cases (zero processing times, which flip the tie-break
// priority; duplicate times, which create ties; tiny and empty instances;
// and eps values from coarse to fine, which move the scaled-size-0
// boundary).
#include <gtest/gtest.h>

#include <vector>

#include "reference_kernels.hpp"
#include "sched/makespan_solvers.hpp"
#include "util/prng.hpp"

namespace bisched {
namespace {

std::vector<R2Job> random_r2_jobs(int n, std::int64_t tmin, std::int64_t tmax, Rng& rng) {
  std::vector<R2Job> jobs(static_cast<std::size_t>(n));
  for (auto& job : jobs) {
    job.p1 = rng.uniform_int(tmin, tmax);
    job.p2 = rng.uniform_int(tmin, tmax);
  }
  return jobs;
}

std::vector<R3Job> random_r3_jobs(int n, std::int64_t tmin, std::int64_t tmax, Rng& rng) {
  std::vector<R3Job> jobs(static_cast<std::size_t>(n));
  for (auto& job : jobs) {
    job.p1 = rng.uniform_int(tmin, tmax);
    job.p2 = rng.uniform_int(tmin, tmax);
    job.p3 = rng.uniform_int(tmin, tmax);
  }
  return jobs;
}

void expect_r2_identical(const R2Result& want, const R2Result& got, const char* what,
                         int trial) {
  EXPECT_EQ(want.cmax, got.cmax) << what << " trial " << trial;
  EXPECT_EQ(want.load1, got.load1) << what << " trial " << trial;
  EXPECT_EQ(want.load2, got.load2) << what << " trial " << trial;
  EXPECT_EQ(want.on_machine2, got.on_machine2) << what << " trial " << trial;
}

TEST(KernelDifferential, R2ExactMatchesSeedBitForBit) {
  Rng rng(1001);
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 1 + static_cast<int>(rng.uniform_int(0, 30));
    // tmin 0 exercises zero-size jobs (the s1 == 0 tie-break flip); a small
    // range forces many exact ties.
    const std::int64_t tmax = 1 + rng.uniform_int(0, 40);
    const auto jobs = random_r2_jobs(n, 0, tmax, rng);
    expect_r2_identical(reference::r2_exact(jobs), r2_exact(jobs), "r2_exact", trial);
  }
}

TEST(KernelDifferential, R2FptasMatchesSeedBitForBit) {
  Rng rng(1002);
  const double epsilons[] = {1.0, 0.5, 0.2, 0.1, 0.03};
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 1 + static_cast<int>(rng.uniform_int(0, 40));
    const std::int64_t tmax = 1 + rng.uniform_int(0, 200);
    const auto jobs = random_r2_jobs(n, 0, tmax, rng);
    const double eps = epsilons[trial % 5];
    expect_r2_identical(reference::r2_fptas(jobs, eps), r2_fptas(jobs, eps), "r2_fptas",
                        trial);
  }
}

TEST(KernelDifferential, R2EdgeCases) {
  // Empty, single-job, all-zero, and identical-jobs instances.
  const std::vector<R2Job> empty;
  expect_r2_identical(reference::r2_fptas(empty, 0.1), r2_fptas(empty, 0.1), "empty", 0);

  const std::vector<R2Job> zeros(5, R2Job{0, 0});
  expect_r2_identical(reference::r2_fptas(zeros, 0.1), r2_fptas(zeros, 0.1), "zeros", 0);
  expect_r2_identical(reference::r2_exact(zeros), r2_exact(zeros), "zeros", 0);

  const std::vector<R2Job> same(7, R2Job{4, 4});
  expect_r2_identical(reference::r2_exact(same), r2_exact(same), "same", 0);
  expect_r2_identical(reference::r2_fptas(same, 0.5), r2_fptas(same, 0.5), "same", 0);

  const std::vector<R2Job> one = {{9, 2}};
  expect_r2_identical(reference::r2_exact(one), r2_exact(one), "one", 0);
}

TEST(KernelDifferential, R3FptasMatchesSeedBitForBit) {
  Rng rng(1003);
  const double epsilons[] = {1.0, 0.6, 0.4, 0.25};
  for (int trial = 0; trial < 40; ++trial) {
    const int n = 1 + static_cast<int>(rng.uniform_int(0, 14));
    const std::int64_t tmax = 1 + rng.uniform_int(0, 60);
    const auto jobs = random_r3_jobs(n, 0, tmax, rng);
    const double eps = epsilons[trial % 4];
    const R3Result want = reference::r3_fptas(jobs, eps);
    const R3Result got = r3_fptas(jobs, eps);
    EXPECT_EQ(want.cmax, got.cmax) << "trial " << trial;
    EXPECT_EQ(want.loads[0], got.loads[0]) << "trial " << trial;
    EXPECT_EQ(want.loads[1], got.loads[1]) << "trial " << trial;
    EXPECT_EQ(want.loads[2], got.loads[2]) << "trial " << trial;
    EXPECT_EQ(want.machine_of, got.machine_of) << "trial " << trial;
  }
}

TEST(KernelDifferential, R3ZeroSizeJobsFlipTieOrder) {
  // Scaled sizes of 0 reorder the seed's write sequence per machine; feed
  // literal zeros so every priority permutation is exercised.
  Rng rng(1004);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 1 + static_cast<int>(rng.uniform_int(0, 10));
    std::vector<R3Job> jobs(static_cast<std::size_t>(n));
    for (auto& job : jobs) {
      job.p1 = rng.uniform_int(0, 3);
      job.p2 = rng.uniform_int(0, 3);
      job.p3 = rng.uniform_int(0, 3);
    }
    const R3Result want = reference::r3_fptas(jobs, 0.3);
    const R3Result got = r3_fptas(jobs, 0.3);
    EXPECT_EQ(want.cmax, got.cmax) << "trial " << trial;
    EXPECT_EQ(want.machine_of, got.machine_of) << "trial " << trial;
  }
}

}  // namespace
}  // namespace bisched

#include <gtest/gtest.h>

#include <vector>

#include "sched/makespan_solvers.hpp"
#include "util/prng.hpp"

namespace bisched {
namespace {

std::vector<R3Job> random_jobs(int n, std::int64_t tmax, Rng& rng) {
  std::vector<R3Job> jobs(static_cast<std::size_t>(n));
  for (auto& j : jobs) {
    j.p1 = rng.uniform_int(0, tmax);
    j.p2 = rng.uniform_int(0, tmax);
    j.p3 = rng.uniform_int(0, tmax);
  }
  return jobs;
}

void expect_consistent(const R3Result& r, std::span<const R3Job> jobs) {
  std::int64_t loads[3] = {0, 0, 0};
  ASSERT_EQ(r.machine_of.size(), jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    ASSERT_LE(r.machine_of[j], 2);
    const std::int64_t t = r.machine_of[j] == 0
                               ? jobs[j].p1
                               : (r.machine_of[j] == 1 ? jobs[j].p2 : jobs[j].p3);
    loads[r.machine_of[j]] += t;
  }
  for (int i = 0; i < 3; ++i) EXPECT_EQ(loads[i], r.loads[i]);
  EXPECT_EQ(std::max({loads[0], loads[1], loads[2]}), r.cmax);
}

TEST(R3Greedy, PicksFastestMachine) {
  const std::vector<R3Job> jobs{{1, 5, 9}, {7, 2, 9}, {7, 8, 3}};
  const auto r = r3_greedy(jobs);
  EXPECT_EQ(r.machine_of, (std::vector<std::uint8_t>{0, 1, 2}));
  EXPECT_EQ(r.cmax, 3);
  expect_consistent(r, jobs);
}

TEST(R3Greedy, EmptyAndZero) {
  EXPECT_EQ(r3_greedy(std::vector<R3Job>{}).cmax, 0);
  const std::vector<R3Job> zeros{{0, 0, 0}};
  EXPECT_EQ(r3_greedy(zeros).cmax, 0);
}

class R3FptasEps : public ::testing::TestWithParam<double> {};

TEST_P(R3FptasEps, WithinGuaranteeOfBruteForce) {
  const double eps = GetParam();
  Rng rng(static_cast<std::uint64_t>(eps * 997) + 41);
  for (int iter = 0; iter < 20; ++iter) {
    const int n = 1 + static_cast<int>(rng.uniform_int(0, 8));
    const auto jobs = random_jobs(n, 20, rng);
    std::vector<std::vector<std::int64_t>> times(3, std::vector<std::int64_t>(n));
    for (int j = 0; j < n; ++j) {
      times[0][static_cast<std::size_t>(j)] = jobs[static_cast<std::size_t>(j)].p1;
      times[1][static_cast<std::size_t>(j)] = jobs[static_cast<std::size_t>(j)].p2;
      times[2][static_cast<std::size_t>(j)] = jobs[static_cast<std::size_t>(j)].p3;
    }
    const std::int64_t opt = rm_bruteforce_makespan(times);
    const auto approx = r3_fptas(jobs, eps);
    expect_consistent(approx, jobs);
    EXPECT_GE(approx.cmax, opt);
    EXPECT_LE(static_cast<double>(approx.cmax), (1.0 + eps) * static_cast<double>(opt) + 1e-9)
        << "eps=" << eps;
  }
}

INSTANTIATE_TEST_SUITE_P(EpsSweep, R3FptasEps, ::testing::Values(1.0, 0.5, 0.25, 0.1));

TEST(R3Fptas, ExactWithTinyEpsOnSmallSums) {
  Rng rng(43);
  for (int iter = 0; iter < 10; ++iter) {
    const int n = 1 + static_cast<int>(rng.uniform_int(0, 5));
    const auto jobs = random_jobs(n, 8, rng);
    std::vector<std::vector<std::int64_t>> times(3, std::vector<std::int64_t>(n));
    for (int j = 0; j < n; ++j) {
      times[0][static_cast<std::size_t>(j)] = jobs[static_cast<std::size_t>(j)].p1;
      times[1][static_cast<std::size_t>(j)] = jobs[static_cast<std::size_t>(j)].p2;
      times[2][static_cast<std::size_t>(j)] = jobs[static_cast<std::size_t>(j)].p3;
    }
    const auto approx = r3_fptas(jobs, 1e-9);
    EXPECT_EQ(approx.cmax, rm_bruteforce_makespan(times));
  }
}

TEST(R3Fptas, PerfectTripartition) {
  // Nine unit jobs, same time everywhere: optimum 3 per machine.
  std::vector<R3Job> jobs(9, R3Job{1, 1, 1});
  const auto r = r3_fptas(jobs, 0.05);
  EXPECT_EQ(r.cmax, 3);
}

TEST(R3Fptas, AllZeroJobs) {
  const std::vector<R3Job> zeros{{0, 0, 0}, {0, 0, 0}};
  EXPECT_EQ(r3_fptas(zeros, 0.5).cmax, 0);
}

}  // namespace
}  // namespace bisched

#include "sched/capacity.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/prng.hpp"

namespace bisched {
namespace {

TEST(Capacity, MachineCapacityFloors) {
  EXPECT_EQ(machine_capacity(3, Rational(5, 2)), 7);   // floor(7.5)
  EXPECT_EQ(machine_capacity(1, Rational(9, 10)), 0);  // slower than one job
  EXPECT_EQ(machine_capacity(4, Rational(2)), 8);
  EXPECT_EQ(machine_capacity(7, Rational(0)), 0);
}

TEST(Capacity, GroupCapacitySums) {
  const std::vector<std::int64_t> speeds{3, 2, 1};
  EXPECT_EQ(group_capacity(speeds, Rational(3, 2)), 4 + 3 + 1);
}

TEST(MinCoverTime, ZeroDemandIsZero) {
  const std::vector<std::int64_t> speeds{5};
  EXPECT_EQ(min_cover_time(speeds, 0), Rational(0));
  EXPECT_EQ(min_cover_time(speeds, -3), Rational(0));
}

TEST(MinCoverTime, EmptyGroup) {
  EXPECT_FALSE(min_cover_time({}, 1).has_value());
  EXPECT_EQ(min_cover_time({}, 0), Rational(0));
}

TEST(MinCoverTime, SingleMachine) {
  const std::vector<std::int64_t> speeds{3};
  // 7 units at speed 3: capacity >= 7 first at t = 7/3.
  EXPECT_EQ(min_cover_time(speeds, 7), Rational(7, 3));
}

TEST(MinCoverTime, KnownMultiMachine) {
  // speeds (3, 2): at t = 2, caps (6, 4) = 10.
  const std::vector<std::int64_t> speeds{3, 2};
  EXPECT_EQ(min_cover_time(speeds, 10), Rational(2));
  // demand 9: t=5/3 -> caps (5, 3)=8 < 9; next events: 2 (3->6) at t=2,
  // 4/2 at t=2; at t=11/6: floor(5.5)=5, floor(11/3)=3 -> 8. The first time
  // reaching 9 is t=2 via either increment.
  EXPECT_EQ(min_cover_time(speeds, 9), Rational(2));
}

TEST(MinCoverTime, ResultIsTightAgainstBruteForce) {
  // Brute force: candidate times are c/s_i for c in [0, demand]; the minimal
  // candidate with enough capacity must match.
  Rng rng(314);
  for (int iter = 0; iter < 200; ++iter) {
    const int m = 1 + static_cast<int>(rng.uniform_int(0, 4));
    std::vector<std::int64_t> speeds(static_cast<std::size_t>(m));
    for (auto& s : speeds) s = rng.uniform_int(1, 9);
    const std::int64_t demand = rng.uniform_int(1, 60);

    const auto fast = min_cover_time(speeds, demand);
    ASSERT_TRUE(fast.has_value());

    Rational best(-1);
    for (std::int64_t s : speeds) {
      for (std::int64_t c = 0; c <= demand; ++c) {
        const Rational t(c, s);
        if (group_capacity(speeds, t) >= demand && (best < Rational(0) || t < best)) {
          best = t;
        }
      }
    }
    EXPECT_EQ(*fast, best) << "m=" << m << " demand=" << demand;
    // Tightness: capacity suffices at t, and t is a capacity breakpoint.
    EXPECT_GE(group_capacity(speeds, *fast), demand);
  }
}

TEST(MinCoverTime, MonotoneInDemand) {
  const std::vector<std::int64_t> speeds{7, 3, 1};
  Rational prev(0);
  for (std::int64_t demand = 1; demand <= 100; ++demand) {
    const auto t = min_cover_time(speeds, demand);
    ASSERT_TRUE(t.has_value());
    EXPECT_LE(prev.to_double(), t->to_double());
    EXPECT_TRUE(prev <= *t);
    prev = *t;
  }
}

TEST(MinCoverTime, LargeUniformGroup) {
  // 100 unit-speed machines, demand 1000 -> exactly t = 10.
  std::vector<std::int64_t> speeds(100, 1);
  EXPECT_EQ(min_cover_time(speeds, 1000), Rational(10));
}

}  // namespace
}  // namespace bisched

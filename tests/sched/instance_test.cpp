#include "sched/instance.hpp"

#include <gtest/gtest.h>

#include "random/generators.hpp"

namespace bisched {
namespace {

TEST(UniformInstance, FactorySortsSpeeds) {
  const auto inst =
      make_uniform_instance({1, 2, 3}, {1, 5, 3}, Graph(3));
  EXPECT_EQ(inst.speeds, (std::vector<std::int64_t>{5, 3, 1}));
  EXPECT_EQ(inst.num_jobs(), 3);
  EXPECT_EQ(inst.num_machines(), 3);
  EXPECT_EQ(inst.total_work(), 6);
  EXPECT_EQ(inst.pmax(), 3);
}

TEST(UniformInstance, IdenticalHelper) {
  const auto inst = make_identical_instance({1, 1}, 4, Graph(2));
  EXPECT_EQ(inst.speeds, (std::vector<std::int64_t>{1, 1, 1, 1}));
}

TEST(UniformInstanceDeath, RejectsNonPositiveWork) {
  EXPECT_DEATH(make_uniform_instance({0}, {1}, Graph(1)), "must be >= 1");
  EXPECT_DEATH(make_uniform_instance({1}, {0}, Graph(1)), "must be >= 1");
}

TEST(UniformInstanceDeath, RejectsJobGraphMismatch) {
  EXPECT_DEATH(make_uniform_instance({1, 1}, {1}, Graph(3)), "does not match");
}

TEST(UnrelatedInstance, FactoryBasics) {
  const auto inst = make_unrelated_instance({{1, 2}, {3, 0}}, Graph(2));
  EXPECT_EQ(inst.num_machines(), 2);
  EXPECT_EQ(inst.num_jobs(), 2);
}

TEST(UnrelatedInstanceDeath, RaggedMatrixRejected) {
  EXPECT_DEATH(make_unrelated_instance({{1, 2}, {3}}, Graph(2)), "ragged");
}

TEST(UnrelatedInstanceDeath, NegativeTimeRejected) {
  EXPECT_DEATH(make_unrelated_instance({{-1}}, Graph(1)), "negative");
}

TEST(UniformAsUnrelated, ScalesBySpeedLcm) {
  // speeds 3 and 2 -> lcm 6; job of size p runs p*2 on M1, p*3 on M2.
  const auto q = make_uniform_instance({5, 7}, {3, 2}, path_graph(2));
  std::int64_t scale = 0;
  const auto r = uniform_as_unrelated(q, 0, 2, &scale);
  EXPECT_EQ(scale, 6);
  EXPECT_EQ(r.times[0], (std::vector<std::int64_t>{10, 14}));
  EXPECT_EQ(r.times[1], (std::vector<std::int64_t>{15, 21}));
  EXPECT_EQ(r.conflicts.num_edges(), 1);
}

TEST(UniformAsUnrelated, SubrangeOfMachines) {
  const auto q = make_uniform_instance({4}, {8, 4, 2}, Graph(1));
  const auto r = uniform_as_unrelated(q, 1, 3);
  EXPECT_EQ(r.num_machines(), 2);
  // lcm(4,2)=4: times 4*1=4 on the speed-4 machine, 4*2=8 on the speed-2 one.
  EXPECT_EQ(r.times[0][0], 4);
  EXPECT_EQ(r.times[1][0], 8);
}

}  // namespace
}  // namespace bisched

// Unit tests for the runtime SIMD dispatch layer: spelling round-trips, the
// hardware level's monotone availability list, and the one-ordering override
// resolution (BISCHED_SIMD read against the CPU in a single refresh — a
// downlevel request wins, an unknown or above-hardware request clamps to
// hardware).
#include <gtest/gtest.h>

#include <cstdlib>

#include "sched/simd_dispatch.hpp"

namespace bisched {
namespace {

// Saves/restores BISCHED_SIMD and re-resolves on the way out so these tests
// cannot leak a forced level into the rest of the suite.
class EnvGuard {
 public:
  EnvGuard() {
    const char* cur = std::getenv("BISCHED_SIMD");
    if (cur != nullptr) saved_ = cur;
    had_ = cur != nullptr;
  }
  ~EnvGuard() {
    if (had_) {
      ::setenv("BISCHED_SIMD", saved_.c_str(), 1);
    } else {
      ::unsetenv("BISCHED_SIMD");
    }
    simd_refresh_level();
  }

 private:
  std::string saved_;
  bool had_ = false;
};

TEST(SimdDispatch, SpellingsRoundTrip) {
  for (const SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kAvx2, SimdLevel::kAvx512}) {
    SimdLevel parsed = SimdLevel::kScalar;
    ASSERT_TRUE(parse_simd_level(to_string(level), &parsed)) << to_string(level);
    EXPECT_EQ(parsed, level);
  }
  SimdLevel parsed = SimdLevel::kAvx2;
  EXPECT_FALSE(parse_simd_level("sse9", &parsed));
  EXPECT_FALSE(parse_simd_level("", &parsed));
  EXPECT_FALSE(parse_simd_level("AVX2", &parsed));  // spellings are lowercase
  EXPECT_EQ(parsed, SimdLevel::kAvx2);              // untouched on failure
}

TEST(SimdDispatch, AvailableLevelsAscendingAndCappedByHardware) {
  const SimdLevel hw = simd_hardware_level();
  const auto levels = simd_available_levels();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.front(), SimdLevel::kScalar);
  EXPECT_EQ(levels.back(), hw);
  for (std::size_t i = 1; i < levels.size(); ++i) {
    EXPECT_LT(levels[i - 1], levels[i]);
  }
}

TEST(SimdDispatch, OverrideForcesDownlevelAndRefreshRetargets) {
  EnvGuard guard;
  ::setenv("BISCHED_SIMD", "scalar", 1);
  EXPECT_EQ(simd_refresh_level(), SimdLevel::kScalar);
  EXPECT_EQ(simd_level(), SimdLevel::kScalar);

  ::unsetenv("BISCHED_SIMD");
  EXPECT_EQ(simd_refresh_level(), simd_hardware_level());
  EXPECT_EQ(simd_level(), simd_hardware_level());
}

TEST(SimdDispatch, UnknownSpellingClampsToHardware) {
  EnvGuard guard;
  ::setenv("BISCHED_SIMD", "sse9", 1);
  EXPECT_EQ(simd_refresh_level(), simd_hardware_level());
}

TEST(SimdDispatch, EveryAvailableLevelIsForcible) {
  EnvGuard guard;
  for (const SimdLevel level : simd_available_levels()) {
    ::setenv("BISCHED_SIMD", to_string(level), 1);
    EXPECT_EQ(simd_refresh_level(), level) << to_string(level);
  }
}

}  // namespace
}  // namespace bisched

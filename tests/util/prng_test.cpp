#include "util/prng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace bisched {
namespace {

TEST(Prng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Prng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next_u64() == b.next_u64());
  EXPECT_LE(equal, 1);
}

TEST(Prng, UniformU64StaysBelowBound) {
  Rng rng(9);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.uniform_u64(bound), bound);
  }
}

TEST(Prng, UniformIntCoversInclusiveRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit with overwhelming probability
}

TEST(Prng, UniformIntSingletonRange) {
  Rng rng(13);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Prng, UniformReal01MeanIsHalf) {
  Rng rng(17);
  double sum = 0;
  const int samples = 100000;
  for (int i = 0; i < samples; ++i) {
    const double u = rng.uniform_real01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / samples, 0.5, 0.01);
}

TEST(Prng, BernoulliFrequency) {
  Rng rng(19);
  const int samples = 50000;
  int hits = 0;
  for (int i = 0; i < samples; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / samples, 0.3, 0.02);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Prng, GeometricSkipsMeanMatchesTheory) {
  Rng rng(23);
  const double p = 0.05;
  const int samples = 50000;
  double sum = 0;
  for (int i = 0; i < samples; ++i) sum += static_cast<double>(rng.geometric_skips(p));
  // E[failures before success] = (1-p)/p = 19.
  EXPECT_NEAR(sum / samples, (1.0 - p) / p, 0.5);
}

TEST(Prng, GeometricSkipsWithPOneIsZero) {
  Rng rng(29);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.geometric_skips(1.0), 0u);
}

TEST(Prng, DeriveSeedGivesDistinctStreams) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t stream = 0; stream < 1000; ++stream) {
    seeds.insert(derive_seed(42, stream));
  }
  EXPECT_EQ(seeds.size(), 1000u);
  EXPECT_NE(derive_seed(42, 0), derive_seed(43, 0));
}

TEST(Prng, WorksWithStdShuffleInterface) {
  Rng rng(31);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::shuffle(v.begin(), v.end(), rng);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

}  // namespace
}  // namespace bisched

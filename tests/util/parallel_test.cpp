#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "util/prng.hpp"

namespace bisched {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  for (unsigned threads : {1u, 2u, 4u, 7u}) {
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h.store(0);
    parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); }, threads);
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, ZeroCountIsNoop) {
  parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; }, 4);
}

TEST(ParallelFor, MoreThreadsThanWork) {
  std::atomic<int> sum{0};
  parallel_for(3, [&](std::size_t i) { sum.fetch_add(static_cast<int>(i)); }, 64);
  EXPECT_EQ(sum.load(), 3);
}

TEST(MonteCarlo, DeterministicAcrossThreadCounts) {
  auto task = [](std::uint64_t seed) {
    Rng rng(seed);
    return rng.uniform_real01();
  };
  const auto r1 = monte_carlo(100, task, /*base_seed=*/99, /*num_threads=*/1);
  const auto r4 = monte_carlo(100, task, /*base_seed=*/99, /*num_threads=*/4);
  EXPECT_EQ(r1, r4);
}

TEST(MonteCarlo, DistinctSeedsPerTrial) {
  auto task = [](std::uint64_t seed) { return static_cast<double>(seed % 100003); };
  const auto r = monte_carlo(50, task, 7, 2);
  // If the seeds were identical, every slot would match slot 0.
  int distinct = 0;
  for (double x : r) distinct += (x != r[0]);
  EXPECT_GT(distinct, 40);
}

TEST(ThreadPool, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&] { counter.fetch_add(1); });
  pool.wait_idle();
  pool.submit([&] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, SizeClampedToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  std::atomic<int> counter{0};
  pool.submit([&] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(DefaultThreadCount, Positive) { EXPECT_GE(default_thread_count(), 1u); }

}  // namespace
}  // namespace bisched

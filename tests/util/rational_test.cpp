#include "util/rational.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "util/prng.hpp"

namespace bisched {
namespace {

TEST(Rational, NormalizesOnConstruction) {
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  EXPECT_EQ(Rational(-2, 4), Rational(-1, 2));
  EXPECT_EQ(Rational(2, -4), Rational(-1, 2));
  EXPECT_EQ(Rational(-2, -4), Rational(1, 2));
  EXPECT_EQ(Rational(0, 7), Rational(0));
  EXPECT_EQ(Rational(0, 7).den(), 1);
}

TEST(Rational, ImplicitFromInt) {
  Rational r = 5;
  EXPECT_EQ(r.num(), 5);
  EXPECT_EQ(r.den(), 1);
  EXPECT_TRUE(r.is_integer());
}

TEST(Rational, Arithmetic) {
  EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
  EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6));
  EXPECT_EQ(Rational(2, 3) * Rational(9, 4), Rational(3, 2));
  EXPECT_EQ(Rational(2, 3) / Rational(4, 9), Rational(3, 2));
  EXPECT_EQ(-Rational(3, 7), Rational(-3, 7));
}

TEST(Rational, DivisionBySignedValueKeepsDenominatorPositive) {
  const Rational r = Rational(1, 2) / Rational(-1, 3);
  EXPECT_EQ(r, Rational(-3, 2));
  EXPECT_GT(r.den(), 0);
}

TEST(Rational, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(-1, 3));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_GE(Rational(7, 2), Rational(3));
  EXPECT_GT(Rational(7, 2), Rational(3));
  EXPECT_NE(Rational(1, 3), Rational(1, 4));
}

TEST(Rational, FloorCeil) {
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(6, 2).floor(), 3);
  EXPECT_EQ(Rational(6, 2).ceil(), 3);
  EXPECT_EQ(Rational(0).floor(), 0);
  EXPECT_EQ(Rational(0).ceil(), 0);
}

TEST(Rational, FloorMulMatchesDefinition) {
  // floor(5 * 7/3) = floor(35/3) = 11
  EXPECT_EQ(floor_mul(5, Rational(7, 3)), 11);
  EXPECT_EQ(floor_mul(3, Rational(1, 3)), 1);
  EXPECT_EQ(floor_mul(2, Rational(-7, 3)), -5);  // floor(-14/3) = -5
  EXPECT_EQ(floor_mul(1, Rational(0)), 0);
}

TEST(Rational, NextCapacityTimeIsStrictIncrease) {
  // speed 3, time 5/3 -> capacity floor(5) = 5; next capacity at 6/3 = 2.
  const Rational t = next_capacity_time(3, Rational(5, 3));
  EXPECT_EQ(t, Rational(2));
  EXPECT_EQ(floor_mul(3, t), 6);
  // Generic property: capacity at next time is exactly old capacity + 1.
  const Rational t2 = next_capacity_time(7, Rational(10, 3));
  EXPECT_EQ(floor_mul(7, t2), floor_mul(7, Rational(10, 3)) + 1);
  EXPECT_GT(t2, Rational(10, 3));
}

TEST(Rational, ToStringAndDouble) {
  EXPECT_EQ(Rational(3, 4).to_string(), "3/4");
  EXPECT_EQ(Rational(5).to_string(), "5");
  EXPECT_DOUBLE_EQ(Rational(1, 4).to_double(), 0.25);
}

TEST(Rational, RandomizedArithmeticAgainstInt128) {
  Rng rng(42);
  for (int iter = 0; iter < 2000; ++iter) {
    const std::int64_t a = rng.uniform_int(-1000, 1000);
    const std::int64_t b = rng.uniform_int(1, 1000);
    const std::int64_t c = rng.uniform_int(-1000, 1000);
    const std::int64_t d = rng.uniform_int(1, 1000);
    const Rational x(a, b), y(c, d);

    const Rational sum = x + y;
    // a/b + c/d == (ad + cb) / bd, compared cross-multiplied in 128 bits.
    const __int128 lhs = static_cast<__int128>(sum.num()) * (b * d);
    const __int128 rhs = static_cast<__int128>(a * d + c * b) * sum.den();
    EXPECT_EQ(lhs, rhs);

    const Rational prod = x * y;
    const __int128 lhs2 = static_cast<__int128>(prod.num()) * (b * d);
    const __int128 rhs2 = static_cast<__int128>(a) * c * prod.den();
    EXPECT_EQ(lhs2, rhs2);

    // Ordering agrees with long double approximation away from ties.
    const long double fx = static_cast<long double>(a) / b;
    const long double fy = static_cast<long double>(c) / d;
    if (fx + 1e-12 < fy) {
      EXPECT_LT(x, y);
    }
    if (fy + 1e-12 < fx) {
      EXPECT_GT(x, y);
    }
  }
}

TEST(Rational, RandomizedFloorMul) {
  Rng rng(7);
  for (int iter = 0; iter < 2000; ++iter) {
    const std::int64_t s = rng.uniform_int(1, 100000);
    const std::int64_t num = rng.uniform_int(0, 1000000);
    const std::int64_t den = rng.uniform_int(1, 1000000);
    const Rational t(num, den);
    const std::int64_t expect =
        static_cast<std::int64_t>(static_cast<__int128>(s) * num / den);
    EXPECT_EQ(floor_mul(s, t), expect);
  }
}

TEST(RationalDeath, ZeroDenominatorAborts) {
  EXPECT_DEATH(Rational(1, 0), "zero denominator");
}

TEST(RationalDeath, DivisionByZeroAborts) {
  EXPECT_DEATH(Rational(1, 2) / Rational(0), "division by zero");
}

}  // namespace
}  // namespace bisched

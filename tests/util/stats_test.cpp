#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/prng.hpp"

namespace bisched {
namespace {

TEST(Welford, MatchesDirectComputation) {
  const std::vector<double> xs{1.0, 2.0, 4.0, 8.0, 16.0};
  Welford w;
  for (double x : xs) w.add(x);
  EXPECT_EQ(w.count(), 5u);
  EXPECT_DOUBLE_EQ(w.mean(), 6.2);
  double m = 0;
  for (double x : xs) m += (x - 6.2) * (x - 6.2);
  EXPECT_NEAR(w.variance(), m / 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(w.min(), 1.0);
  EXPECT_DOUBLE_EQ(w.max(), 16.0);
}

TEST(Welford, VarianceOfFewSamplesIsZero) {
  Welford w;
  EXPECT_EQ(w.variance(), 0.0);
  w.add(3.0);
  EXPECT_EQ(w.variance(), 0.0);
  EXPECT_EQ(w.mean(), 3.0);
}

TEST(Welford, MergeEqualsSequential) {
  Rng rng(5);
  Welford whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform_real01() * 10 - 5;
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Welford, MergeWithEmpty) {
  Welford a, b;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(Percentile, KnownValues) {
  std::vector<double> xs{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 50);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 30);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.25), 20);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.125), 15);  // interpolated
}

TEST(Percentile, SingleSample) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.9), 7.0);
}

TEST(Summarize, FullSummary) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(i);
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.p50, 50.5, 1e-9);
  EXPECT_NEAR(s.p90, 90.1, 1e-9);
  EXPECT_NEAR(s.p99, 99.01, 1e-9);
}

TEST(Summarize, EmptyIsZeroed) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

}  // namespace
}  // namespace bisched

#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace bisched {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t("demo");
  t.set_header({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("| name      | value |"), std::string::npos);
  EXPECT_NE(out.find("| long-name | 22    |"), std::string::npos);
}

TEST(TextTable, CsvEscapesSpecials) {
  TextTable t;
  t.set_header({"a", "b"});
  t.add_row({"x,y", "he said \"hi\""});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n");
}

TEST(TextTable, RowCount) {
  TextTable t;
  t.set_header({"a"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTableDeath, WidthMismatchAborts) {
  TextTable t;
  t.set_header({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "row width mismatch");
}

TEST(Formatters, Render) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_ratio(1.03125), "1.0312");  // round-to-even banker's is fine
  EXPECT_EQ(fmt_count(12345), "12345");
  EXPECT_EQ(fmt_sci(0.00032), "3.20e-04");
  EXPECT_EQ(fmt_bool(true), "yes");
  EXPECT_EQ(fmt_bool(false), "no");
}

}  // namespace
}  // namespace bisched

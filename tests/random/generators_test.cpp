#include "random/generators.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/bipartite.hpp"
#include "graph/coloring.hpp"

namespace bisched {
namespace {

TEST(Generators, CompleteBipartiteCounts) {
  const Graph g = complete_bipartite(3, 4);
  EXPECT_EQ(g.num_vertices(), 7);
  EXPECT_EQ(g.num_edges(), 12);
  EXPECT_TRUE(bipartition(g).has_value());
}

TEST(Generators, CrownCounts) {
  const Graph g = crown(4);
  EXPECT_EQ(g.num_vertices(), 8);
  EXPECT_EQ(g.num_edges(), 4 * 3);
  for (int u = 0; u < 4; ++u) EXPECT_FALSE(g.has_edge(u, 4 + u));
  EXPECT_TRUE(bipartition(g).has_value());
}

TEST(Generators, PathAndCycle) {
  EXPECT_EQ(path_graph(1).num_edges(), 0);
  EXPECT_EQ(path_graph(5).num_edges(), 4);
  const Graph c = even_cycle(3);
  EXPECT_EQ(c.num_vertices(), 6);
  EXPECT_EQ(c.num_edges(), 6);
  for (int v = 0; v < 6; ++v) EXPECT_EQ(c.degree(v), 2);
  EXPECT_TRUE(bipartition(c).has_value());
}

TEST(Generators, DoubleStar) {
  const Graph g = double_star(2, 3);
  EXPECT_EQ(g.num_vertices(), 7);
  EXPECT_EQ(g.num_edges(), 6);
  EXPECT_EQ(g.degree(0), 3);
  EXPECT_EQ(g.degree(1), 4);
  EXPECT_TRUE(bipartition(g).has_value());
}

TEST(Generators, RandomTreeIsTree) {
  Rng rng(42);
  for (int n : {1, 2, 5, 20, 100}) {
    const Graph g = random_tree(n, rng);
    EXPECT_EQ(g.num_vertices(), n);
    EXPECT_EQ(g.num_edges(), n - 1);
    const auto bp = bipartition(g);
    ASSERT_TRUE(bp.has_value());
    EXPECT_EQ(bp->num_components, 1);  // connected + n-1 edges => tree
  }
}

TEST(Generators, RandomBipartiteEdgesExactCountDistinct) {
  Rng rng(7);
  for (int iter = 0; iter < 20; ++iter) {
    const int a = 2 + static_cast<int>(rng.uniform_int(0, 5));
    const int b = 2 + static_cast<int>(rng.uniform_int(0, 5));
    const std::int64_t m = rng.uniform_int(0, static_cast<std::int64_t>(a) * b);
    const Graph g = random_bipartite_edges(a, b, m, rng);
    EXPECT_EQ(g.num_edges(), m);
    // Distinctness: adjacency of each left vertex has no duplicates.
    for (int u = 0; u < a; ++u) {
      std::set<int> uniq(g.neighbors(u).begin(), g.neighbors(u).end());
      EXPECT_EQ(uniq.size(), g.neighbors(u).size());
    }
    EXPECT_TRUE(bipartition(g).has_value());
  }
}

TEST(Generators, RandomBipartiteEdgesFullGraph) {
  Rng rng(8);
  const Graph g = random_bipartite_edges(3, 3, 9, rng);
  EXPECT_EQ(g.num_edges(), 9);
  for (int u = 0; u < 3; ++u) {
    for (int v = 0; v < 3; ++v) EXPECT_TRUE(g.has_edge(u, 3 + v));
  }
}

TEST(Generators, PlantedColoringIsProperAndBipartite) {
  Rng rng(11);
  for (int iter = 0; iter < 10; ++iter) {
    std::vector<int> colors;
    std::vector<std::uint8_t> sides;
    const Graph g = random_bipartite_planted_coloring(40, 3, 0.5, rng, &colors, &sides);
    EXPECT_TRUE(is_proper_coloring(g, colors));
    EXPECT_TRUE(bipartition(g).has_value());
    // Edges only between distinct sides.
    for (int u = 0; u < g.num_vertices(); ++u) {
      for (int v : g.neighbors(u)) EXPECT_NE(sides[u], sides[v]);
    }
  }
}

TEST(Weights, UnitWeights) {
  const auto w = unit_weights(5);
  EXPECT_EQ(w, (std::vector<std::int64_t>{1, 1, 1, 1, 1}));
}

TEST(Weights, UniformWeightsInRange) {
  Rng rng(3);
  const auto w = uniform_weights(500, 5, 9, rng);
  EXPECT_EQ(w.size(), 500u);
  for (auto x : w) {
    EXPECT_GE(x, 5);
    EXPECT_LE(x, 9);
  }
  // All values appear.
  std::set<std::int64_t> seen(w.begin(), w.end());
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Weights, BimodalWeightsRespectRangesAndFraction) {
  Rng rng(4);
  const auto w = bimodal_weights(2000, 1, 10, 1000, 2000, 0.25, rng);
  int heavy = 0;
  for (auto x : w) {
    const bool in_light = x >= 1 && x <= 10;
    const bool in_heavy = x >= 1000 && x <= 2000;
    EXPECT_TRUE(in_light || in_heavy);
    heavy += in_heavy;
  }
  EXPECT_NEAR(static_cast<double>(heavy) / 2000.0, 0.25, 0.05);
}

}  // namespace
}  // namespace bisched

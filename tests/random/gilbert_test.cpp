#include "random/gilbert.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/bipartite.hpp"

namespace bisched {
namespace {

TEST(Gilbert, ZeroProbabilityGivesEmptyGraph) {
  Rng rng(1);
  const Graph g = gilbert_bipartite(10, 0.0, rng);
  EXPECT_EQ(g.num_vertices(), 20);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(Gilbert, ProbabilityOneGivesCompleteBipartite) {
  Rng rng(1);
  for (auto* sampler : {&gilbert_bipartite_dense, &gilbert_bipartite_sparse}) {
    const Graph g = (*sampler)(6, 1.0, rng);
    EXPECT_EQ(g.num_vertices(), 12);
    EXPECT_EQ(g.num_edges(), 36);
  }
}

TEST(Gilbert, AllEdgesCrossTheParts) {
  Rng rng(5);
  const int n = 40;
  const Graph g = gilbert_bipartite(n, 0.2, rng);
  for (int u = 0; u < n; ++u) {
    for (int v : g.neighbors(u)) {
      EXPECT_GE(v, n);
      EXPECT_LT(v, 2 * n);
    }
  }
  EXPECT_TRUE(bipartition(g).has_value());
}

TEST(Gilbert, DeterministicForSeed) {
  Rng a(77), b(77);
  const Graph ga = gilbert_bipartite(30, 0.1, a);
  const Graph gb = gilbert_bipartite(30, 0.1, b);
  ASSERT_EQ(ga.num_edges(), gb.num_edges());
  for (int v = 0; v < ga.num_vertices(); ++v) {
    EXPECT_EQ(ga.neighbors(v), gb.neighbors(v));
  }
}

TEST(Gilbert, DenseSamplerEdgeCountNearExpectation) {
  Rng rng(13);
  const int n = 100;
  const double p = 0.3;
  double total = 0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    total += static_cast<double>(gilbert_bipartite_dense(n, p, rng).num_edges());
  }
  const double mean = total / trials;
  const double expected = p * n * n;
  // stddev of one draw ~ sqrt(n^2 p (1-p)) ~ 46; mean of 30 draws ~ 8.4.
  EXPECT_NEAR(mean, expected, 40.0);
}

TEST(Gilbert, SparseSamplerEdgeCountNearExpectation) {
  Rng rng(17);
  const int n = 400;
  const double p = 2.0 / n;  // regime a/n with a=2
  double total = 0;
  const int trials = 50;
  for (int t = 0; t < trials; ++t) {
    total += static_cast<double>(gilbert_bipartite_sparse(n, p, rng).num_edges());
  }
  const double mean = total / trials;
  const double expected = p * n * n;  // = 800
  EXPECT_NEAR(mean, expected, 30.0);
}

TEST(Gilbert, SparseAndDenseAgreeInDistribution) {
  // Compare edge-count means of the two samplers at the same (n, p).
  Rng r1(23), r2(29);
  const int n = 120;
  const double p = 0.04;
  double dense = 0, sparse = 0;
  const int trials = 60;
  for (int t = 0; t < trials; ++t) {
    dense += static_cast<double>(gilbert_bipartite_dense(n, p, r1).num_edges());
    sparse += static_cast<double>(gilbert_bipartite_sparse(n, p, r2).num_edges());
  }
  const double expected = p * n * n;  // 576
  EXPECT_NEAR(dense / trials, expected, 40);
  EXPECT_NEAR(sparse / trials, expected, 40);
}

TEST(Gilbert, TrivialSizes) {
  Rng rng(3);
  EXPECT_EQ(gilbert_bipartite(0, 0.5, rng).num_vertices(), 0);
  const Graph g1 = gilbert_bipartite(1, 1.0, rng);
  EXPECT_EQ(g1.num_vertices(), 2);
  EXPECT_EQ(g1.num_edges(), 1);
}

TEST(GilbertRegimes, EvaluatorsInRange) {
  for (int n : {2, 10, 100, 10000}) {
    EXPECT_GT(p_below_critical(n), 0.0);
    EXPECT_LT(p_below_critical(n), 1.0 / n);  // o(1/n) indeed below 1/n here
    EXPECT_DOUBLE_EQ(p_critical(2.0, n), std::min(1.0, 2.0 / n));
    EXPECT_GE(p_log_over_n(n), 0.0);
    EXPECT_LE(p_log_over_n(n), 1.0);
    EXPECT_LE(p_inv_sqrt(n), 1.0);
  }
}

}  // namespace
}  // namespace bisched

#include "core/alg_random.hpp"

#include <gtest/gtest.h>

#include "core/exact_bb.hpp"
#include "random/generators.hpp"
#include "random/gilbert.hpp"
#include "sched/lower_bounds.hpp"
#include "util/prng.hpp"

namespace bisched {
namespace {

UniformInstance gilbert_instance(int n, double p, std::vector<std::int64_t> speeds, Rng& rng) {
  Graph g = gilbert_bipartite(n, p, rng);
  return make_uniform_instance(unit_weights(2 * n), std::move(speeds), std::move(g));
}

TEST(Alg2, ValidOnGilbertAcrossRegimes) {
  Rng rng(11);
  for (double p : {0.0, 0.05, 0.3, 1.0}) {
    const auto inst = gilbert_instance(20, p, {5, 2, 1, 1}, rng);
    const auto r = alg2_random_bipartite(inst);
    EXPECT_EQ(validate(inst, r.schedule), ScheduleStatus::kValid) << "p=" << p;
    EXPECT_EQ(makespan(inst, r.schedule), r.cmax);
    EXPECT_TRUE(lower_bound(inst) <= r.cmax);
    EXPECT_GE(r.k, 2);
    EXPECT_LE(r.k, 4);
  }
}

TEST(Alg2, SingleMachineEdgeless) {
  const auto inst = make_uniform_instance({1, 1, 1}, {2}, Graph(3));
  const auto r = alg2_random_bipartite(inst);
  EXPECT_EQ(r.cmax, Rational(3, 2));
  EXPECT_EQ(r.k, 1);
}

TEST(Alg2, TwoMachinesSplitsClasses) {
  const auto inst = make_uniform_instance(unit_weights(8), {1, 1}, complete_bipartite(4, 4));
  const auto r = alg2_random_bipartite(inst);
  EXPECT_EQ(validate(inst, r.schedule), ScheduleStatus::kValid);
  EXPECT_EQ(r.cmax, Rational(4));  // one side per machine is forced & optimal
}

TEST(Alg2, EmptyGraphBalancesAllMachines) {
  // No conflicts: V'_2 empty; everything on M1 + tail machines.
  const auto inst = make_uniform_instance(unit_weights(12), {1, 1, 1}, Graph(12));
  const auto r = alg2_random_bipartite(inst);
  EXPECT_EQ(validate(inst, r.schedule), ScheduleStatus::kValid);
  EXPECT_EQ(r.cmax, Rational(6));  // V'1 on M1 and M3 (k=2 reserves M2)
}

// Statistical check of Theorem 19: mean ratio to the certified lower bound
// stays near 2 (the a.a.s. bound) for moderately large n in the a/n regime.
TEST(Alg2, RatioStatisticallyNearTwoInCriticalRegime) {
  Rng rng(2718);
  double worst = 0, sum = 0;
  const int trials = 20;
  const int n = 60;
  for (int t = 0; t < trials; ++t) {
    const auto inst = gilbert_instance(n, 2.0 / n, {6, 3, 2, 1, 1, 1}, rng);
    const auto r = alg2_random_bipartite(inst);
    EXPECT_EQ(validate(inst, r.schedule), ScheduleStatus::kValid);
    const double ratio = r.cmax.to_double() / lower_bound(inst).to_double();
    worst = std::max(worst, ratio);
    sum += ratio;
  }
  EXPECT_LE(sum / trials, 2.2);
  EXPECT_LE(worst, 3.5);  // generous; a.a.s. statements allow finite-n outliers
}

TEST(Alg2, ExactlyOptimalWhenGraphIsEmptyAndMachinesEqual) {
  const auto inst = make_uniform_instance(unit_weights(8), {1, 1, 1, 1}, Graph(8));
  const auto r = alg2_random_bipartite(inst);
  const auto exact = exact_uniform_bb(inst);
  ASSERT_TRUE(exact.feasible);
  EXPECT_TRUE(r.cmax <= exact.cmax * Rational(2));
}

TEST(Alg2, AblationInequitableNotWorseOnAverage) {
  Rng rng(99);
  double ineq = 0, arb = 0;
  for (int t = 0; t < 15; ++t) {
    const auto inst = gilbert_instance(40, 1.5 / 40, {8, 2, 1, 1}, rng);
    ineq += alg2_random_bipartite(inst, /*use_inequitable=*/true).cmax.to_double();
    arb += alg2_random_bipartite(inst, /*use_inequitable=*/false).cmax.to_double();
    // Both variants must stay valid.
    EXPECT_EQ(validate(inst, alg2_random_bipartite(inst, false).schedule),
              ScheduleStatus::kValid);
  }
  EXPECT_LE(ineq, arb * 1.05);  // the heavy-side rule should not lose on average
}

}  // namespace
}  // namespace bisched

#include "core/r2_reduction.hpp"

#include <gtest/gtest.h>

#include "core/exact_bb.hpp"
#include "random/generators.hpp"
#include "testing_util.hpp"
#include "util/prng.hpp"

namespace bisched {
namespace {

TEST(R2Reduction, SingleEdgeComponentCases) {
  // Jobs 0-1 conflict. times chosen so that orientation side0->M1 dominates:
  // p*[0][0]=1 <= p*[0][1]=5 and p*[1][1]=2 <= p*[1][0]=9.
  Graph g(2);
  g.add_edge(0, 1);
  const auto inst = make_unrelated_instance({{1, 5}, {9, 2}}, std::move(g));
  const auto red = reduce_r2_bipartite(inst);
  ASSERT_EQ(red.components.size(), 1u);
  EXPECT_TRUE(red.components[0].forced);
  EXPECT_EQ(red.components[0].forced_orientation, 0);
  EXPECT_EQ(red.base1, 1);
  EXPECT_EQ(red.base2, 2);
}

TEST(R2Reduction, CaseCProducesDecisionJob) {
  // p*[0][0]=4 > p*[0][1]=1 and p*[1][0]=6 > p*[1][1]=2: neither orientation
  // dominates (extra on M1 vs extra on M2).
  Graph g(2);
  g.add_edge(0, 1);
  const auto inst = make_unrelated_instance({{4, 1}, {6, 2}}, std::move(g));
  const auto red = reduce_r2_bipartite(inst);
  ASSERT_EQ(red.components.size(), 1u);
  const auto& comp = red.components[0];
  EXPECT_FALSE(comp.forced);
  EXPECT_EQ(comp.reduced.p1, 3);  // 4 - 1
  EXPECT_EQ(comp.reduced.p2, 4);  // 6 - 2
  EXPECT_EQ(red.base1, 1);
  EXPECT_EQ(red.base2, 2);
  // Decision on M1 -> the side with larger machine-1 time (side 0) to M1.
  EXPECT_EQ(decode_orientation(comp, false), 0);
  EXPECT_EQ(decode_orientation(comp, true), 1);
}

TEST(R2Reduction, IsolatedVerticesAreComponents) {
  const auto inst = make_unrelated_instance({{3, 1}, {1, 3}}, Graph(2));
  const auto red = reduce_r2_bipartite(inst);
  EXPECT_EQ(red.components.size(), 2u);
}

// The load identity of Theorem 21: for EVERY orientation vector, the loads of
// the reconstructed schedule equal base + chosen extras of the reduction.
TEST(R2Reduction, LoadIdentityOverAllOrientations) {
  Rng rng(99);
  for (int iter = 0; iter < 40; ++iter) {
    const auto inst = testing::random_r2_instance(
        1 + static_cast<int>(rng.uniform_int(0, 3)), 1 + static_cast<int>(rng.uniform_int(0, 3)),
        9, rng);
    const auto red = reduce_r2_bipartite(inst);
    const auto c = red.components.size();
    ASSERT_LE(c, 8u);
    for (std::uint32_t mask = 0; mask < (1u << c); ++mask) {
      std::vector<std::uint8_t> on_m2(c, 0);
      std::int64_t extra1 = 0, extra2 = 0;
      for (std::size_t i = 0; i < c; ++i) {
        if (red.components[i].forced) continue;
        on_m2[i] = (mask >> i) & 1;
        (on_m2[i] ? extra2 : extra1) +=
            on_m2[i] ? red.components[i].reduced.p2 : red.components[i].reduced.p1;
      }
      const Schedule s = reconstruct_r2_schedule(inst, red, on_m2);
      EXPECT_EQ(validate(inst, s), ScheduleStatus::kValid);
      const auto loads = machine_loads(inst, s);
      EXPECT_EQ(loads[0], red.base1 + extra1);
      EXPECT_EQ(loads[1], red.base2 + extra2);
    }
  }
}

// Optimizing over orientations equals the true conflict-respecting optimum.
TEST(R2Reduction, OrientationOptimumEqualsExact) {
  Rng rng(123);
  for (int iter = 0; iter < 30; ++iter) {
    const auto inst = testing::random_r2_instance(
        2 + static_cast<int>(rng.uniform_int(0, 2)), 2 + static_cast<int>(rng.uniform_int(0, 2)),
        7, rng);
    const auto red = reduce_r2_bipartite(inst);
    const auto c = red.components.size();
    ASSERT_LE(c, 10u);
    std::int64_t best = INT64_MAX;
    for (std::uint32_t mask = 0; mask < (1u << c); ++mask) {
      std::vector<std::uint8_t> on_m2(c, 0);
      for (std::size_t i = 0; i < c; ++i) on_m2[i] = (mask >> i) & 1;
      const Schedule s = reconstruct_r2_schedule(inst, red, on_m2);
      best = std::min(best, makespan(inst, s));
    }
    const auto exact = exact_unrelated_bb(inst);
    ASSERT_TRUE(exact.feasible);
    EXPECT_EQ(best, exact.cmax);
  }
}

TEST(R2ReductionDeath, RequiresTwoMachines) {
  const auto inst = make_unrelated_instance({{1}, {1}, {1}}, Graph(1));
  EXPECT_DEATH(reduce_r2_bipartite(inst), "two machines");
}

TEST(R2ReductionDeath, RequiresBipartite) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  const auto inst = make_unrelated_instance({{1, 1, 1}, {1, 1, 1}}, std::move(g));
  EXPECT_DEATH(reduce_r2_bipartite(inst), "bipartite");
}

}  // namespace
}  // namespace bisched

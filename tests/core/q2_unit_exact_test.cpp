#include "core/q2_unit_exact.hpp"

#include <gtest/gtest.h>

#include "core/exact_bb.hpp"
#include "random/generators.hpp"
#include "util/prng.hpp"

namespace bisched {
namespace {

UniformInstance unit_q2(Graph g, std::int64_t s1, std::int64_t s2) {
  const int n = g.num_vertices();
  return make_uniform_instance(std::vector<std::int64_t>(static_cast<std::size_t>(n), 1),
                               {s1, s2}, std::move(g));
}

TEST(Q2Exact, CompleteBipartiteSplitsAreSides) {
  const auto inst = unit_q2(complete_bipartite(3, 5), 1, 1);
  const auto splits = q2_achievable_splits(inst);
  // Single component: only 3 or 5 jobs can sit on M1.
  for (int n1 = 0; n1 <= 8; ++n1) {
    EXPECT_EQ(splits[static_cast<std::size_t>(n1)] != 0, n1 == 3 || n1 == 5) << n1;
  }
  const auto r = q2_unit_exact_dp(inst);
  EXPECT_EQ(r.cmax, Rational(5));  // best: 5 on one machine, 3 on the other
  EXPECT_EQ(validate(inst, r.schedule), ScheduleStatus::kValid);
}

TEST(Q2Exact, SpeedsBreakSymmetry) {
  // K_{3,5} on speeds (5, 1): put the 5-side on the fast machine: max(1, 3).
  const auto inst = unit_q2(complete_bipartite(3, 5), 5, 1);
  const auto r = q2_unit_exact_dp(inst);
  EXPECT_EQ(r.jobs_on_m1, 5);
  EXPECT_EQ(r.cmax, Rational(3));
}

TEST(Q2Exact, IsolatedVerticesGiveAllSplits) {
  const auto inst = unit_q2(Graph(4), 1, 1);
  const auto splits = q2_achievable_splits(inst);
  for (int n1 = 0; n1 <= 4; ++n1) EXPECT_TRUE(splits[static_cast<std::size_t>(n1)]);
  EXPECT_EQ(q2_unit_exact_dp(inst).cmax, Rational(2));
}

TEST(Q2Exact, EmptyInstance) {
  const auto inst = unit_q2(Graph(0), 2, 1);
  EXPECT_EQ(q2_unit_exact_dp(inst).cmax, Rational(0));
  EXPECT_EQ(q2_unit_exact_via_fptas(inst).cmax, Rational(0));
}

TEST(Q2Exact, DpMatchesBranchAndBound) {
  Rng rng(404);
  for (int iter = 0; iter < 40; ++iter) {
    const int a = 1 + static_cast<int>(rng.uniform_int(0, 5));
    const int b = 1 + static_cast<int>(rng.uniform_int(0, 5));
    const std::int64_t max_m = static_cast<std::int64_t>(a) * b;
    Graph g = random_bipartite_edges(a, b, rng.uniform_int(0, max_m), rng);
    const auto inst = unit_q2(std::move(g), rng.uniform_int(1, 4), rng.uniform_int(1, 4));
    const auto dp = q2_unit_exact_dp(inst);
    const auto bb = exact_uniform_bb(inst);
    ASSERT_TRUE(bb.feasible);
    EXPECT_EQ(dp.cmax, bb.cmax);
    EXPECT_EQ(validate(inst, dp.schedule), ScheduleStatus::kValid);
    EXPECT_EQ(makespan(inst, dp.schedule), dp.cmax);
  }
}

// The paper's Theorem 4 route (FPTAS per split) agrees with the direct DP.
TEST(Q2Exact, FptasRouteMatchesDp) {
  Rng rng(505);
  for (int iter = 0; iter < 25; ++iter) {
    const int a = 1 + static_cast<int>(rng.uniform_int(0, 4));
    const int b = 1 + static_cast<int>(rng.uniform_int(0, 4));
    const std::int64_t max_m = static_cast<std::int64_t>(a) * b;
    Graph g = random_bipartite_edges(a, b, rng.uniform_int(0, max_m), rng);
    const auto inst = unit_q2(std::move(g), rng.uniform_int(1, 5), rng.uniform_int(1, 5));
    const auto dp = q2_unit_exact_dp(inst);
    const auto via = q2_unit_exact_via_fptas(inst);
    EXPECT_EQ(dp.cmax, via.cmax);
    EXPECT_EQ(validate(inst, via.schedule), ScheduleStatus::kValid);
    EXPECT_EQ(makespan(inst, via.schedule), via.cmax);
  }
}

TEST(Q2Exact, PathGraphSplits) {
  // Path on 4 vertices: one component, sides {0,2} and {1,3} -> n1 in {2}.
  const auto inst = unit_q2(path_graph(4), 1, 1);
  const auto splits = q2_achievable_splits(inst);
  EXPECT_FALSE(splits[0]);
  EXPECT_FALSE(splits[1]);
  EXPECT_TRUE(splits[2]);
  EXPECT_FALSE(splits[3]);
  EXPECT_FALSE(splits[4]);
}

TEST(Q2ExactDeath, RejectsNonUnitJobs) {
  const auto inst = make_uniform_instance({2, 1}, {1, 1}, Graph(2));
  EXPECT_DEATH(q2_unit_exact_dp(inst), "unit jobs");
}

TEST(Q2ExactDeath, RejectsThreeMachines) {
  const auto inst = make_uniform_instance({1}, {1, 1, 1}, Graph(1));
  EXPECT_DEATH(q2_unit_exact_dp(inst), "two machines");
}

}  // namespace
}  // namespace bisched

#include "core/alg_sqrt.hpp"

#include <gtest/gtest.h>

#include "core/exact_bb.hpp"
#include "core/q2_general.hpp"
#include "random/generators.hpp"
#include "sched/lower_bounds.hpp"
#include "testing_util.hpp"
#include "util/prng.hpp"

namespace bisched {
namespace {

TEST(Alg1, TinyTotalIsSolvedExactly) {
  // Total work 4 <= 4 -> brute force.
  Graph g(2);
  g.add_edge(0, 1);
  const auto inst = make_uniform_instance({2, 2}, {2, 1, 1}, std::move(g));
  const auto r = alg1_sqrt_approx(inst);
  EXPECT_TRUE(r.solved_exactly);
  EXPECT_EQ(validate(inst, r.schedule), ScheduleStatus::kValid);
  // OPT: 2 on fast machine (time 1), 2 on a slow one (time 2)? Better: split
  // across M1 twice is illegal (conflict) -> OPT = max(1, 2) = 2... actually
  // placing both on M1 is illegal; {M1, M2} gives max(2/2, 2/1) = 2. No
  // schedule beats 2 because some job must run on a speed-1 machine.
  EXPECT_EQ(r.cmax, Rational(2));
  const auto exact = exact_uniform_bb(inst);
  ASSERT_TRUE(exact.feasible);
  EXPECT_EQ(r.cmax, exact.cmax);
}

TEST(Alg1, SingleMachineEdgelessGraph) {
  const auto inst = make_uniform_instance({3, 4}, {2}, Graph(2));
  const auto r = alg1_sqrt_approx(inst);
  EXPECT_EQ(r.cmax, Rational(7, 2));
}

TEST(Alg1Death, SingleMachineWithConflicts) {
  Graph g(2);
  g.add_edge(0, 1);
  const auto inst = make_uniform_instance({3, 4}, {2}, std::move(g));
  EXPECT_DEATH(alg1_sqrt_approx(inst), "edgeless");
}

TEST(Alg1, TwoMachinesUsesS1Only) {
  Rng rng(8);
  const auto inst = testing::random_uniform_instance(4, 4, 2, 9, 3, rng);
  const auto r = alg1_sqrt_approx(inst);
  EXPECT_FALSE(r.s2_built);
  EXPECT_EQ(validate(inst, r.schedule), ScheduleStatus::kValid);
  // S1 = Algorithm 5 with eps=1 on both machines: 2-approximate here.
  const auto exact = exact_uniform_bb(inst);
  ASSERT_TRUE(exact.feasible);
  EXPECT_TRUE(r.cmax <= exact.cmax * Rational(2));
}

// The headline guarantee (Theorem 9): cmax <= sqrt(sum p) * OPT, checked in
// exact rational arithmetic against the branch-and-bound optimum.
TEST(Alg1, SqrtGuaranteeAgainstExactOnRandomInstances) {
  Rng rng(909);
  for (int iter = 0; iter < 50; ++iter) {
    const auto inst = testing::random_uniform_instance(
        2 + static_cast<int>(rng.uniform_int(0, 4)), 2 + static_cast<int>(rng.uniform_int(0, 4)),
        2 + static_cast<int>(rng.uniform_int(0, 4)), 8, 5, rng);
    const auto r = alg1_sqrt_approx(inst);
    ASSERT_EQ(validate(inst, r.schedule), ScheduleStatus::kValid);
    EXPECT_EQ(makespan(inst, r.schedule), r.cmax);
    const auto exact = exact_uniform_bb(inst);
    ASSERT_TRUE(exact.feasible);
    EXPECT_TRUE(exact.cmax <= r.cmax);
    testing::expect_le_sqrt_times(r.cmax, inst.total_work(), exact.cmax, "Theorem 9");
  }
}

TEST(Alg1, HeavyJobsForcedIntoIndependentSet) {
  // Two huge jobs on one side, many small ones on the other; the huge jobs
  // are "big" (p^2 >= sum p) and must all fit one independent set.
  Graph g = complete_bipartite(2, 6);
  std::vector<std::int64_t> p{50, 50, 1, 1, 1, 1, 1, 1};
  const auto inst = make_uniform_instance(std::move(p), {10, 2, 1, 1}, std::move(g));
  const auto r = alg1_sqrt_approx(inst);
  EXPECT_EQ(validate(inst, r.schedule), ScheduleStatus::kValid);
  const auto exact = exact_uniform_bb(inst);
  ASSERT_TRUE(exact.feasible);
  testing::expect_le_sqrt_times(r.cmax, inst.total_work(), exact.cmax, "big-job case");
}

TEST(Alg1, BigJobsOnBothSidesFallBackToS1) {
  // Big jobs adjacent to each other: no independent set contains both, so
  // only S1 exists; must still be valid and within the sqrt bound.
  Graph g(4);
  g.add_edge(0, 1);  // both big
  std::vector<std::int64_t> p{30, 30, 2, 2};
  const auto inst = make_uniform_instance(std::move(p), {4, 3, 1}, std::move(g));
  const auto r = alg1_sqrt_approx(inst);
  EXPECT_FALSE(r.s2_built);
  EXPECT_EQ(validate(inst, r.schedule), ScheduleStatus::kValid);
  const auto exact = exact_uniform_bb(inst);
  ASSERT_TRUE(exact.feasible);
  testing::expect_le_sqrt_times(r.cmax, inst.total_work(), exact.cmax, "conflicting-big");
}

TEST(Alg1, CrownInstancesAcrossMachineCounts) {
  Rng rng(3);
  for (int m : {2, 3, 4, 6}) {
    std::vector<std::int64_t> p = uniform_weights(8, 1, 6, rng);
    const auto inst = make_uniform_instance(std::move(p), std::vector<std::int64_t>(m, 2),
                                            crown(4));
    const auto r = alg1_sqrt_approx(inst);
    EXPECT_EQ(validate(inst, r.schedule), ScheduleStatus::kValid) << "m=" << m;
    EXPECT_TRUE(lower_bound(inst) <= r.cmax);
  }
}

TEST(Alg1, ReportsDiagnostics) {
  Rng rng(5);
  const auto inst = testing::random_uniform_instance(6, 6, 4, 5, 3, rng);
  const auto r = alg1_sqrt_approx(inst);
  if (r.s2_built) {
    EXPECT_GE(r.k, 3);
    EXPECT_GE(r.k_prime, 2);
    EXPECT_LE(r.k_prime, r.k);
    EXPECT_TRUE(r.cstarstar > Rational(0));
    EXPECT_TRUE(r.cmax == (r.used_s2 ? r.s2_cmax : r.s1_cmax));
  }
}

// On two machines Algorithm 1 IS the Algorithm-5 call with eps = 1, so it is
// 2-approximate; certified against the pseudo-polynomial exact solver at
// sizes far beyond branch-and-bound reach.
TEST(Alg1, TwoMachineGuaranteeAtScale) {
  Rng rng(911);
  for (int iter = 0; iter < 8; ++iter) {
    const auto inst = testing::random_uniform_instance(40, 40, 2, 12, 5, rng);
    const auto r = alg1_sqrt_approx(inst);
    ASSERT_EQ(validate(inst, r.schedule), ScheduleStatus::kValid);
    const auto exact = q2_weighted_exact_dp(inst);
    EXPECT_TRUE(exact.cmax <= r.cmax);
    EXPECT_TRUE(r.cmax <= exact.cmax * Rational(2))
        << r.cmax.to_string() << " vs opt " << exact.cmax.to_string();
  }
}

TEST(Alg1, LargerRandomInstancesStayValid) {
  Rng rng(6);
  for (int iter = 0; iter < 10; ++iter) {
    const auto inst = testing::random_uniform_instance(
        30, 30, 5 + static_cast<int>(rng.uniform_int(0, 5)), 50, 8, rng);
    const auto r = alg1_sqrt_approx(inst);
    EXPECT_EQ(validate(inst, r.schedule), ScheduleStatus::kValid);
    // Ratio against the certified lower bound must respect Theorem 9 as well
    // (LB <= OPT).
    const Rational lb = lower_bound(inst);
    EXPECT_TRUE(lb <= r.cmax);
  }
}

}  // namespace
}  // namespace bisched

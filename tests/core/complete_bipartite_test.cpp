#include "core/complete_bipartite_exact.hpp"

#include <gtest/gtest.h>

#include "core/exact_bb.hpp"
#include "core/q2_unit_exact.hpp"
#include "random/generators.hpp"
#include "sched/capacity.hpp"
#include "util/prng.hpp"

namespace bisched {
namespace {

TEST(CompleteBipartiteFeasible, BasicSplits) {
  const std::vector<std::int64_t> speeds{3, 2};
  // At T=2: caps (6, 4). Sides (5, 4): machine 1 -> side 1, machine 2 -> side 2.
  std::vector<std::uint8_t> sides;
  EXPECT_TRUE(complete_bipartite_feasible(speeds, 5, 4, Rational(2), &sides));
  EXPECT_NE(sides[0], sides[1]);
  // Sides (7, 4) need more than caps allow on one side.
  EXPECT_FALSE(complete_bipartite_feasible(speeds, 7, 4, Rational(2)));
  // Sides (6, 4) exactly fit.
  EXPECT_TRUE(complete_bipartite_feasible(speeds, 6, 4, Rational(2)));
}

TEST(CompleteBipartiteFeasible, EmptySidesTrivial) {
  const std::vector<std::int64_t> speeds{2};
  EXPECT_TRUE(complete_bipartite_feasible(speeds, 0, 0, Rational(0)));
  EXPECT_TRUE(complete_bipartite_feasible(speeds, 4, 0, Rational(2)));
  EXPECT_FALSE(complete_bipartite_feasible(speeds, 5, 0, Rational(2)));
}

TEST(CompleteBipartiteExact, KnownOptimum) {
  // K_{3,5} on speeds (1,1): one machine per side -> Cmax 5.
  const std::vector<std::int64_t> equal{1, 1};
  EXPECT_EQ(complete_bipartite_unit_exact(equal, 3, 5).cmax, Rational(5));
  // Speeds (5,1): the 5-side on the fast machine, Cmax 3 (3 jobs at speed 1).
  const std::vector<std::int64_t> skewed{5, 1};
  EXPECT_EQ(complete_bipartite_unit_exact(skewed, 3, 5).cmax, Rational(3));
  // Three machines (2,1,1), sides (4,4): fast machine + one slow per ... e.g.
  // side1 -> {2}, side2 -> {1,1}: max(4/2, ceil split 2+2) = 2... side2 covers
  // 4 jobs across two speed-1 machines in time 2. Optimum 2.
  const std::vector<std::int64_t> three{2, 1, 1};
  EXPECT_EQ(complete_bipartite_unit_exact(three, 4, 4).cmax, Rational(2));
}

TEST(CompleteBipartiteExact, MatchesBranchAndBoundOnInstances) {
  Rng rng(7);
  for (int iter = 0; iter < 25; ++iter) {
    const int a = 1 + static_cast<int>(rng.uniform_int(0, 4));
    const int b = 1 + static_cast<int>(rng.uniform_int(0, 4));
    const int m = 2 + static_cast<int>(rng.uniform_int(0, 2));
    std::vector<std::int64_t> speeds(static_cast<std::size_t>(m));
    for (auto& s : speeds) s = rng.uniform_int(1, 5);
    const auto inst =
        make_uniform_instance(unit_weights(a + b), speeds, complete_bipartite(a, b));
    const auto fast = solve_complete_bipartite_instance(inst);
    const auto bb = exact_uniform_bb(inst);
    ASSERT_TRUE(bb.feasible);
    EXPECT_EQ(fast.cmax, bb.cmax) << "a=" << a << " b=" << b << " m=" << m;
    EXPECT_EQ(validate(inst, fast.schedule), ScheduleStatus::kValid);
  }
}

TEST(CompleteBipartiteExact, AgreesWithTheorem4OnTwoMachines) {
  Rng rng(8);
  for (int iter = 0; iter < 20; ++iter) {
    const int a = 1 + static_cast<int>(rng.uniform_int(0, 6));
    const int b = 1 + static_cast<int>(rng.uniform_int(0, 6));
    std::vector<std::int64_t> speeds{rng.uniform_int(1, 6), rng.uniform_int(1, 6)};
    const auto inst =
        make_uniform_instance(unit_weights(a + b), speeds, complete_bipartite(a, b));
    const auto kab = solve_complete_bipartite_instance(inst);
    const auto q2 = q2_unit_exact_dp(inst);
    EXPECT_EQ(kab.cmax, q2.cmax);
  }
}

TEST(CompleteBipartiteExact, ScalesToLargeSides) {
  // Unary-encoding polynomiality: thousands of jobs are fine.
  const std::vector<std::int64_t> speeds{40, 20, 10, 5, 1};
  const auto r = complete_bipartite_unit_exact(speeds, 5000, 3000);
  // Total capacity per unit time = 76; lower bound 8000/76 ≈ 105.3.
  EXPECT_GE(r.cmax.to_double(), 8000.0 / 76.0 - 1e-9);
  EXPECT_LE(r.cmax.to_double(), 2 * 8000.0 / 76.0);
  // The split must cover both sides.
  std::int64_t cover[2] = {0, 0};
  for (std::size_t i = 0; i < speeds.size(); ++i) {
    cover[r.side_of_machine[i]] += machine_capacity(speeds[i], r.cmax);
  }
  EXPECT_GE(cover[0], 5000);
  EXPECT_GE(cover[1], 3000);
}

TEST(CompleteBipartiteExactDeath, RejectsIncompleteGraphs) {
  Graph sparse(4);
  sparse.add_edge(0, 2);
  const auto inst = make_uniform_instance(unit_weights(4), {1, 1}, std::move(sparse));
  EXPECT_DEATH(solve_complete_bipartite_instance(inst), "not complete bipartite");
}

TEST(CompleteBipartiteExactDeath, RejectsNonUnitJobs) {
  const auto inst = make_uniform_instance({2, 1}, {1, 1}, complete_bipartite(1, 1));
  EXPECT_DEATH(solve_complete_bipartite_instance(inst), "unit jobs");
}

}  // namespace
}  // namespace bisched

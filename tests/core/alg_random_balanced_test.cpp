#include "core/alg_random_balanced.hpp"

#include <gtest/gtest.h>

#include "core/exact_bb.hpp"
#include "random/generators.hpp"
#include "random/gilbert.hpp"
#include "sched/lower_bounds.hpp"
#include "util/prng.hpp"

namespace bisched {
namespace {

UniformInstance gilbert_instance(int n, double p, std::vector<std::int64_t> speeds, Rng& rng) {
  Graph g = gilbert_bipartite(n, p, rng);
  return make_uniform_instance(unit_weights(2 * n), std::move(speeds), std::move(g));
}

TEST(Alg2Balanced, ValidAcrossRegimes) {
  Rng rng(1);
  for (double p : {0.0, 0.002, 0.05, 0.5}) {
    const auto inst = gilbert_instance(40, p, {9, 3, 1, 1}, rng);
    const auto r = alg2_balanced(inst);
    EXPECT_EQ(validate(inst, r.schedule), ScheduleStatus::kValid) << "p=" << p;
    EXPECT_EQ(makespan(inst, r.schedule), r.cmax);
    EXPECT_TRUE(lower_bound(inst) <= r.cmax);
  }
}

TEST(Alg2Balanced, CountsIsolatedJobs) {
  Graph g(5);
  g.add_edge(0, 1);
  const auto inst = make_uniform_instance({1, 1, 1, 1, 1}, {2, 1}, std::move(g));
  const auto r = alg2_balanced(inst);
  EXPECT_EQ(r.isolated_jobs, 3);
  EXPECT_EQ(validate(inst, r.schedule), ScheduleStatus::kValid);
}

TEST(Alg2Balanced, EqualsAlg2WhenNoIsolatedVertices) {
  // Crown graphs have no isolated vertices: 2B must coincide with Algorithm 2
  // in makespan (the constrained placement is identical and nothing remains
  // to balance).
  Rng rng(2);
  const auto inst = make_uniform_instance(unit_weights(12), {5, 2, 1}, crown(6));
  const auto a = alg2_random_bipartite(inst);
  const auto b = alg2_balanced(inst);
  EXPECT_EQ(b.isolated_jobs, 0);
  EXPECT_EQ(a.cmax, b.cmax);
}

// The Section-6 claim: in the sparse regime (p = o(1/n), almost everything
// isolated), balancing the isolated jobs across all machines beats pushing
// the whole heavy class to M1 + tail.
TEST(Alg2Balanced, BeatsAlg2InSparseRegime) {
  Rng rng(3);
  int wins = 0, ties = 0, losses = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 60;
    const auto inst = gilbert_instance(n, p_below_critical(n), {7, 5, 3, 2, 1}, rng);
    const auto a = alg2_random_bipartite(inst);
    const auto b = alg2_balanced(inst);
    if (b.cmax < a.cmax) {
      ++wins;
    } else if (b.cmax == a.cmax) {
      ++ties;
    } else {
      ++losses;
    }
  }
  EXPECT_GT(wins + ties, losses) << "wins=" << wins << " ties=" << ties;
  EXPECT_GT(wins, 0);
}

TEST(Alg2Balanced, NearOptimalOnFullyIsolatedGraphs) {
  // Edgeless graph: 2B is plain LPT on all machines; compare to exact.
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    const auto inst = make_uniform_instance(uniform_weights(10, 1, 9, rng),
                                            {rng.uniform_int(1, 4), rng.uniform_int(1, 4),
                                             rng.uniform_int(1, 4)},
                                            Graph(10));
    const auto b = alg2_balanced(inst);
    const auto exact = exact_uniform_bb(inst);
    ASSERT_TRUE(exact.feasible);
    // LPT on uniform machines is well within 2x optimal.
    EXPECT_TRUE(b.cmax <= exact.cmax * Rational(2));
  }
}

TEST(Alg2Balanced, SingleMachineEdgeless) {
  const auto inst = make_uniform_instance({3, 2, 1}, {2}, Graph(3));
  const auto r = alg2_balanced(inst);
  EXPECT_EQ(r.cmax, Rational(3));
  EXPECT_EQ(r.isolated_jobs, 3);
}

}  // namespace
}  // namespace bisched

#include "core/baselines.hpp"

#include <gtest/gtest.h>

#include "core/exact_bb.hpp"
#include "random/generators.hpp"
#include "testing_util.hpp"
#include "util/prng.hpp"

namespace bisched {
namespace {

TEST(TwoColorSplit, ValidAndUsesTwoFastestMachines) {
  Rng rng(12);
  const auto inst = testing::random_uniform_instance(5, 5, 4, 9, 3, rng);
  const auto r = two_color_split(inst);
  EXPECT_EQ(validate(inst, r.schedule), ScheduleStatus::kValid);
  for (int machine : r.schedule.machine_of) EXPECT_LE(machine, 1);
  EXPECT_EQ(makespan(inst, r.schedule), r.cmax);
}

TEST(TwoColorSplit, HeavyClassOnFastMachine) {
  // Star: center vs 4 leaves; heavy class (leaves, weight 4) on M1.
  Graph g = complete_bipartite(1, 4);
  const auto inst = make_uniform_instance(unit_weights(5), {10, 1}, std::move(g));
  const auto r = two_color_split(inst);
  EXPECT_EQ(r.schedule.machine_of[1], 0);
  EXPECT_EQ(r.schedule.machine_of[0], 1);
  EXPECT_EQ(r.cmax, Rational(1));  // max(4/10, 1/1)
}

TEST(ClassProportionalSplit, ValidAndBetterThanTwoColorOnWideMachines) {
  Rng rng(13);
  double split2 = 0, proportional = 0;
  for (int t = 0; t < 20; ++t) {
    const auto inst = testing::random_uniform_instance(8, 8, 6, 9, 2, rng);
    const auto a = two_color_split(inst);
    const auto b = class_proportional_split(inst);
    EXPECT_EQ(validate(inst, b.schedule), ScheduleStatus::kValid);
    split2 += a.cmax.to_double();
    proportional += b.cmax.to_double();
  }
  // With 6 machines the proportional split must beat the 2-machine squeeze
  // on average by a wide margin.
  EXPECT_LT(proportional, split2);
}

TEST(ClassProportionalSplit, TwoApproxOnIdenticalMachines) {
  // The BJW guarantee [3] is for identical machines and m >= 3.
  Rng rng(14);
  for (int iter = 0; iter < 25; ++iter) {
    const int a = 2 + static_cast<int>(rng.uniform_int(0, 3));
    const int b = 2 + static_cast<int>(rng.uniform_int(0, 3));
    const std::int64_t max_m = static_cast<std::int64_t>(a) * b;
    Graph g = random_bipartite_edges(a, b, rng.uniform_int(0, max_m / 2), rng);
    std::vector<std::int64_t> p(static_cast<std::size_t>(a + b));
    for (auto& x : p) x = rng.uniform_int(1, 6);
    const auto inst = make_identical_instance(std::move(p),
                                              3 + static_cast<int>(rng.uniform_int(0, 2)),
                                              std::move(g));
    const auto r = class_proportional_split(inst);
    const auto exact = exact_uniform_bb(inst);
    ASSERT_TRUE(exact.feasible);
    EXPECT_TRUE(r.cmax <= exact.cmax * Rational(2))
        << "got " << r.cmax.to_string() << " vs opt " << exact.cmax.to_string();
  }
}

TEST(ClassProportionalSplit, BothGroupsNonEmptyEvenWhenOneClassEmpty) {
  // Edgeless graph: light class empty; machines must still split 1/1.
  const auto inst = make_uniform_instance(unit_weights(4), {1, 1}, Graph(4));
  const auto r = class_proportional_split(inst);
  EXPECT_EQ(validate(inst, r.schedule), ScheduleStatus::kValid);
}

TEST(BaselinesDeath, NeedTwoMachines) {
  const auto inst = make_uniform_instance({1}, {1}, Graph(1));
  EXPECT_DEATH(two_color_split(inst), "two machines");
  EXPECT_DEATH(class_proportional_split(inst), "two machines");
}

}  // namespace
}  // namespace bisched

#include "core/q2_general.hpp"

#include <gtest/gtest.h>

#include "core/exact_bb.hpp"
#include "core/q2_unit_exact.hpp"
#include "random/generators.hpp"
#include "testing_util.hpp"
#include "util/prng.hpp"

namespace bisched {
namespace {

TEST(Q2General, AchievableLoadsOnSingleEdge) {
  Graph g(2);
  g.add_edge(0, 1);
  const auto inst = make_uniform_instance({3, 5}, {2, 1}, std::move(g));
  const auto loads = q2_achievable_loads(inst);
  // One component with side weights {3, 5}: machine 1 gets 3 or 5.
  for (std::int64_t x = 0; x <= 8; ++x) {
    EXPECT_EQ(loads[static_cast<std::size_t>(x)] != 0, x == 3 || x == 5) << x;
  }
}

TEST(Q2General, WeightedDpKnownOptimum) {
  Graph g(2);
  g.add_edge(0, 1);
  const auto inst = make_uniform_instance({3, 5}, {2, 1}, std::move(g));
  // Options: load1=5 -> max(5/2, 3) = 3; load1=3 -> max(3/2, 5) = 5. Best 3...
  // wait: load1=5: M2 gets 3 at speed 1 -> 3; load1=3: M2 gets 5 -> 5.
  const auto r = q2_weighted_exact_dp(inst);
  EXPECT_EQ(r.cmax, Rational(3));
  EXPECT_EQ(validate(inst, r.schedule), ScheduleStatus::kValid);
}

TEST(Q2General, AllThreeSolversAgreeWithBranchAndBound) {
  Rng rng(2024);
  for (int iter = 0; iter < 30; ++iter) {
    const auto inst = testing::random_uniform_instance(
        1 + static_cast<int>(rng.uniform_int(0, 4)), 1 + static_cast<int>(rng.uniform_int(0, 4)),
        2, 8, 5, rng);
    const auto bb = exact_uniform_bb(inst);
    ASSERT_TRUE(bb.feasible);
    const auto dp = q2_weighted_exact_dp(inst);
    EXPECT_EQ(dp.cmax, bb.cmax);
    const auto via_r2 = q2_exact_via_r2(inst);
    EXPECT_EQ(via_r2.cmax, bb.cmax);
    EXPECT_EQ(validate(inst, dp.schedule), ScheduleStatus::kValid);
    EXPECT_EQ(validate(inst, via_r2.schedule), ScheduleStatus::kValid);
  }
}

class Q2FptasEps : public ::testing::TestWithParam<double> {};

TEST_P(Q2FptasEps, WithinGuarantee) {
  const double eps = GetParam();
  Rng rng(static_cast<std::uint64_t>(eps * 131) + 5);
  for (int iter = 0; iter < 15; ++iter) {
    const auto inst = testing::random_uniform_instance(
        2 + static_cast<int>(rng.uniform_int(0, 4)), 2 + static_cast<int>(rng.uniform_int(0, 4)),
        2, 9, 4, rng);
    const auto approx = q2_fptas(inst, eps);
    EXPECT_EQ(validate(inst, approx.schedule), ScheduleStatus::kValid);
    const auto exact = q2_weighted_exact_dp(inst);
    EXPECT_TRUE(exact.cmax <= approx.cmax);
    EXPECT_LE(approx.cmax.to_double(), (1.0 + eps) * exact.cmax.to_double() + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(EpsSweep, Q2FptasEps, ::testing::Values(1.0, 0.25, 0.05));

TEST(Q2General, UnitJobsReduceToTheorem4) {
  Rng rng(31);
  for (int iter = 0; iter < 15; ++iter) {
    const int a = 1 + static_cast<int>(rng.uniform_int(0, 5));
    const int b = 1 + static_cast<int>(rng.uniform_int(0, 5));
    Graph g = random_bipartite_edges(a, b, rng.uniform_int(0, static_cast<std::int64_t>(a) * b),
                                     rng);
    const auto inst = make_uniform_instance(unit_weights(a + b),
                                            {rng.uniform_int(1, 4), rng.uniform_int(1, 4)},
                                            std::move(g));
    EXPECT_EQ(q2_weighted_exact_dp(inst).cmax, q2_unit_exact_dp(inst).cmax);
  }
}

TEST(Q2General, LargerPseudoPolynomialInstances) {
  Rng rng(32);
  const auto inst = testing::random_uniform_instance(60, 60, 2, 50, 6, rng);
  const auto dp = q2_weighted_exact_dp(inst);
  const auto via_r2 = q2_exact_via_r2(inst);
  EXPECT_EQ(dp.cmax, via_r2.cmax);
  const auto fpt = q2_fptas(inst, 0.05);
  EXPECT_LE(fpt.cmax.to_double(), 1.05 * dp.cmax.to_double() + 1e-9);
}

TEST(Q2GeneralDeath, RequiresTwoMachines) {
  const auto inst = make_uniform_instance({1}, {1, 1, 1}, Graph(1));
  EXPECT_DEATH(q2_weighted_exact_dp(inst), "two machines");
}

}  // namespace
}  // namespace bisched

#include "core/r2_algorithms.hpp"

#include <gtest/gtest.h>

#include "core/exact_bb.hpp"
#include "testing_util.hpp"
#include "util/prng.hpp"

namespace bisched {
namespace {

TEST(Alg4TwoApprox, ValidAndWithinFactorTwo) {
  Rng rng(2021);
  for (int iter = 0; iter < 50; ++iter) {
    const auto inst = testing::random_r2_instance(
        1 + static_cast<int>(rng.uniform_int(0, 4)), 1 + static_cast<int>(rng.uniform_int(0, 4)),
        12, rng);
    const auto approx = r2_two_approx(inst);
    EXPECT_EQ(validate(inst, approx.schedule), ScheduleStatus::kValid);
    EXPECT_EQ(makespan(inst, approx.schedule), approx.cmax);
    const auto exact = exact_unrelated_bb(inst);
    ASSERT_TRUE(exact.feasible);
    EXPECT_LE(approx.cmax, 2 * exact.cmax) << "Theorem 21 violated";
    EXPECT_GE(approx.cmax, exact.cmax);
  }
}

TEST(Alg4TwoApprox, SingleComponentPicksDominantOrientation) {
  Graph g(2);
  g.add_edge(0, 1);
  const auto inst = make_unrelated_instance({{1, 5}, {9, 2}}, std::move(g));
  const auto approx = r2_two_approx(inst);
  // Forced orientation side0->M1: loads (1, 2), cmax 2 — also the optimum.
  EXPECT_EQ(approx.cmax, 2);
}

TEST(Alg4TwoApprox, AllZeroTimes) {
  Graph g(2);
  g.add_edge(0, 1);
  const auto inst = make_unrelated_instance({{0, 0}, {0, 0}}, std::move(g));
  EXPECT_EQ(r2_two_approx(inst).cmax, 0);
}

class Alg5Eps : public ::testing::TestWithParam<double> {};

TEST_P(Alg5Eps, WithinGuaranteeOfExact) {
  const double eps = GetParam();
  Rng rng(static_cast<std::uint64_t>(eps * 997) + 3);
  for (int iter = 0; iter < 25; ++iter) {
    const auto inst = testing::random_r2_instance(
        1 + static_cast<int>(rng.uniform_int(0, 4)), 1 + static_cast<int>(rng.uniform_int(0, 4)),
        15, rng);
    const auto approx = r2_fptas_bipartite(inst, eps);
    EXPECT_EQ(validate(inst, approx.schedule), ScheduleStatus::kValid);
    const auto exact = exact_unrelated_bb(inst);
    ASSERT_TRUE(exact.feasible);
    EXPECT_LE(static_cast<double>(approx.cmax),
              (1.0 + eps) * static_cast<double>(exact.cmax) + 1e-9)
        << "Theorem 22 violated at eps=" << eps;
    EXPECT_GE(approx.cmax, exact.cmax);
  }
}

INSTANTIATE_TEST_SUITE_P(EpsSweep, Alg5Eps, ::testing::Values(1.0, 0.5, 0.2, 0.1, 0.02));

TEST(Alg5Fptas, NearExactWithTinyEps) {
  Rng rng(77);
  for (int iter = 0; iter < 15; ++iter) {
    const auto inst = testing::random_r2_instance(
        1 + static_cast<int>(rng.uniform_int(0, 3)), 1 + static_cast<int>(rng.uniform_int(0, 3)),
        9, rng);
    const auto approx = r2_fptas_bipartite(inst, 1e-9);
    const auto exact = exact_unrelated_bb(inst);
    ASSERT_TRUE(exact.feasible);
    EXPECT_EQ(approx.cmax, exact.cmax);
  }
}

TEST(Alg5Fptas, NeverWorseThanAlg4) {
  Rng rng(31);
  for (int iter = 0; iter < 30; ++iter) {
    const auto inst = testing::random_r2_instance(
        1 + static_cast<int>(rng.uniform_int(0, 4)), 1 + static_cast<int>(rng.uniform_int(0, 4)),
        20, rng);
    EXPECT_LE(r2_fptas_bipartite(inst, 0.3).cmax, r2_two_approx(inst).cmax);
  }
}

TEST(R2ExactBipartite, MatchesBranchAndBound) {
  Rng rng(181);
  for (int iter = 0; iter < 40; ++iter) {
    const auto inst = testing::random_r2_instance(
        1 + static_cast<int>(rng.uniform_int(0, 4)), 1 + static_cast<int>(rng.uniform_int(0, 4)),
        12, rng);
    const auto fast = r2_exact_bipartite(inst);
    EXPECT_EQ(validate(inst, fast.schedule), ScheduleStatus::kValid);
    const auto bb = exact_unrelated_bb(inst);
    ASSERT_TRUE(bb.feasible);
    EXPECT_EQ(fast.cmax, bb.cmax);
  }
}

TEST(R2ExactBipartite, SandwichesApproximations) {
  Rng rng(191);
  for (int iter = 0; iter < 20; ++iter) {
    const auto inst = testing::random_r2_instance(6, 6, 25, rng);
    const auto exact = r2_exact_bipartite(inst);
    const auto two = r2_two_approx(inst);
    const auto fpt = r2_fptas_bipartite(inst, 0.1);
    EXPECT_LE(exact.cmax, two.cmax);
    EXPECT_LE(two.cmax, 2 * exact.cmax);
    EXPECT_LE(exact.cmax, fpt.cmax);
    EXPECT_LE(static_cast<double>(fpt.cmax), 1.1 * static_cast<double>(exact.cmax) + 1e-9);
  }
}

TEST(Alg5Fptas, CrownInstance) {
  // Crown on 3+3 with asymmetric machines: exact comparison sanity check.
  auto g = crown(3);
  std::vector<std::vector<std::int64_t>> times(2, std::vector<std::int64_t>(6));
  for (int j = 0; j < 6; ++j) {
    times[0][static_cast<std::size_t>(j)] = 2;
    times[1][static_cast<std::size_t>(j)] = 3;
  }
  const auto inst = make_unrelated_instance(std::move(times), std::move(g));
  const auto approx = r2_fptas_bipartite(inst, 0.01);
  const auto exact = exact_unrelated_bb(inst);
  ASSERT_TRUE(exact.feasible);
  EXPECT_EQ(approx.cmax, exact.cmax);
}

}  // namespace
}  // namespace bisched

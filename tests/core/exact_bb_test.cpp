#include "core/exact_bb.hpp"

#include <gtest/gtest.h>

#include "random/generators.hpp"
#include "sched/makespan_solvers.hpp"
#include "testing_util.hpp"
#include "util/prng.hpp"

namespace bisched {
namespace {

TEST(ExactUniform, KnownOptimum) {
  // Two conflicting jobs, speeds (2,1): put the bigger on the fast machine.
  Graph g(2);
  g.add_edge(0, 1);
  const auto inst = make_uniform_instance({6, 2}, {2, 1}, std::move(g));
  const auto r = exact_uniform_bb(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.cmax, Rational(3));  // 6/2 on M1, 2/1 on M2
}

TEST(ExactUniform, InfeasibleWhenColorsExceedMachines) {
  // K_{1,1} needs 2 machines.
  Graph g(2);
  g.add_edge(0, 1);
  const auto inst = make_uniform_instance({1, 1}, {5}, std::move(g));
  const auto r = exact_uniform_bb(inst);
  EXPECT_FALSE(r.feasible);
  EXPECT_FALSE(r.aborted);
}

TEST(ExactUniform, MatchesFullEnumeration) {
  Rng rng(55);
  for (int iter = 0; iter < 30; ++iter) {
    const auto inst = testing::random_uniform_instance(
        1 + static_cast<int>(rng.uniform_int(0, 2)), 1 + static_cast<int>(rng.uniform_int(0, 2)),
        2 + static_cast<int>(rng.uniform_int(0, 1)), 7, 3, rng);
    const int n = inst.num_jobs();
    const int m = inst.num_machines();
    // Full enumeration without any pruning/symmetry, as ground truth.
    Rational best(-1);
    std::vector<int> assign(static_cast<std::size_t>(n), 0);
    for (;;) {
      Schedule s{assign};
      if (validate(inst, s) == ScheduleStatus::kValid) {
        const Rational cm = makespan(inst, s);
        if (best < Rational(0) || cm < best) best = cm;
      }
      int pos = n - 1;
      while (pos >= 0 && assign[static_cast<std::size_t>(pos)] == m - 1) {
        assign[static_cast<std::size_t>(pos)] = 0;
        --pos;
      }
      if (pos < 0) break;
      ++assign[static_cast<std::size_t>(pos)];
    }
    const auto r = exact_uniform_bb(inst);
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(r.cmax, best);
  }
}

TEST(ExactUniform, NodeLimitReportsAborted) {
  Rng rng(66);
  const auto inst = testing::random_uniform_instance(6, 6, 4, 9, 3, rng);
  const auto r = exact_uniform_bb(inst, /*max_nodes=*/2);
  EXPECT_TRUE(r.aborted || r.feasible);
  if (r.aborted) {
    EXPECT_FALSE(r.feasible);
  }
}

TEST(ExactUnrelated, KnownOptimum) {
  Graph g(2);
  g.add_edge(0, 1);
  const auto inst = make_unrelated_instance({{4, 9}, {7, 3}}, std::move(g));
  const auto r = exact_unrelated_bb(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.cmax, 4);  // job0 -> M1 (4), job1 -> M2 (3)
}

TEST(ExactUnrelated, MatchesBruteForceWithoutConflicts) {
  Rng rng(77);
  for (int iter = 0; iter < 25; ++iter) {
    const int n = 1 + static_cast<int>(rng.uniform_int(0, 7));
    const int m = 2 + static_cast<int>(rng.uniform_int(0, 1));
    std::vector<std::vector<std::int64_t>> times(
        static_cast<std::size_t>(m), std::vector<std::int64_t>(static_cast<std::size_t>(n)));
    for (auto& row : times) {
      for (auto& t : row) t = rng.uniform_int(0, 12);
    }
    const auto inst = make_unrelated_instance(times, Graph(n));
    const auto r = exact_unrelated_bb(inst);
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(r.cmax, rm_bruteforce_makespan(times));
  }
}

TEST(ExactUnrelated, ConflictsRaiseOptimum) {
  // Without the conflict, both jobs would take machine 1 (cost 1+1).
  Graph g(2);
  g.add_edge(0, 1);
  const auto with_conflict =
      make_unrelated_instance({{1, 1}, {10, 10}}, std::move(g));
  const auto r = exact_unrelated_bb(with_conflict);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.cmax, 10);
  const auto no_conflict = make_unrelated_instance({{1, 1}, {10, 10}}, Graph(2));
  const auto r2 = exact_unrelated_bb(no_conflict);
  ASSERT_TRUE(r2.feasible);
  EXPECT_EQ(r2.cmax, 2);
}

TEST(ExactUniform, SymmetryBreakingPreservesOptimum) {
  // Many equal machines: symmetry pruning must not lose the optimum.
  const auto inst =
      make_uniform_instance({4, 3, 2, 1}, {1, 1, 1, 1}, complete_bipartite(2, 2));
  const auto r = exact_uniform_bb(inst);
  ASSERT_TRUE(r.feasible);
  // Sides {0,1} and {2,3}: machine sets must separate sides; best split:
  // {4},{3},{2,1} -> 4... or {4},{3},{2},{1} -> 4.
  EXPECT_EQ(r.cmax, Rational(4));
}

}  // namespace
}  // namespace bisched

// Pre-optimization reference kernels, verbatim from the seed tree.
//
// PR 3 rewrote the R2/R3 FPTAS DP kernels (arena-backed, in-place pull form,
// window-pruned — src/sched/makespan_solvers.cpp) and Dinic (CSR adjacency,
// ring-buffer BFS — src/graph/maxflow.cpp) with the contract that results
// stay *bit-identical*: same makespans, same assignments, same residual
// graphs and min-cut sides. This header preserves the seed implementations
// as the ground truth for that contract; the differential tests
// (tests/sched/kernel_differential_test.cpp, tests/graph/maxflow_test.cpp)
// compare the optimized library against it on randomized instances, and
// bench/bench_hotpaths.cpp measures the speedup against it. Deliberately
// unoptimized — do not "fix" or speed these up; their value is being the old
// behavior.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <queue>
#include <span>
#include <vector>

#include "sched/makespan_solvers.hpp"
#include "util/check.hpp"

namespace bisched::reference {

using i64 = std::int64_t;
inline constexpr i64 kInf = std::numeric_limits<i64>::max() / 4;

// ---- seed R2 kernel --------------------------------------------------------

class ChoiceBits {
 public:
  ChoiceBits(std::size_t rows, std::size_t cols)
      : words_((cols + 63) / 64), data_(rows * words_, 0) {}

  void set(std::size_t r, std::size_t c, bool bit) {
    auto& word = data_[r * words_ + c / 64];
    const std::uint64_t mask = 1ULL << (c % 64);
    word = bit ? (word | mask) : (word & ~mask);
  }
  bool get(std::size_t r, std::size_t c) const {
    return (data_[r * words_ + c / 64] >> (c % 64)) & 1ULL;
  }

 private:
  std::size_t words_;
  std::vector<std::uint64_t> data_;
};

inline R2Result finalize(std::span<const R2Job> jobs, std::vector<std::uint8_t> on_m2) {
  R2Result r;
  r.on_machine2 = std::move(on_m2);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    if (r.on_machine2[j]) {
      r.load2 += jobs[j].p2;
    } else {
      r.load1 += jobs[j].p1;
    }
  }
  r.cmax = std::max(r.load1, r.load2);
  return r;
}

inline bool scaled_feasible(std::span<const i64> s1, std::span<const i64> s2,
                            i64 budget, std::vector<std::uint8_t>& on_m2) {
  BISCHED_CHECK(budget >= 0, "negative DP budget");
  const std::size_t n = s1.size();
  const auto width = static_cast<std::size_t>(budget) + 1;
  BISCHED_CHECK(static_cast<double>(n) * static_cast<double>(width) <= 2e9,
                "R2 DP table too large; reduce instance or raise eps");

  std::vector<i64> cur(width, kInf);
  std::vector<i64> next(width);
  cur[0] = 0;
  ChoiceBits choice(n, width);

  for (std::size_t j = 0; j < n; ++j) {
    std::fill(next.begin(), next.end(), kInf);
    for (std::size_t l1 = 0; l1 < width; ++l1) {
      if (cur[l1] == kInf) continue;
      const i64 via_m2 = cur[l1] + s2[j];
      if (via_m2 < next[l1]) {
        next[l1] = via_m2;
        choice.set(j, l1, false);
      }
      const std::size_t nl1 = l1 + static_cast<std::size_t>(s1[j]);
      if (nl1 < width && cur[l1] < next[nl1]) {
        next[nl1] = cur[l1];
        choice.set(j, nl1, true);
      }
    }
    cur.swap(next);
  }

  std::size_t l1 = width;
  for (std::size_t cand = 0; cand < width; ++cand) {
    if (cur[cand] <= budget) {
      l1 = cand;
      break;
    }
  }
  if (l1 == width) return false;

  on_m2.assign(n, 0);
  for (std::size_t j = n; j-- > 0;) {
    if (choice.get(j, l1)) {
      on_m2[j] = 0;
      BISCHED_CHECK(l1 >= static_cast<std::size_t>(s1[j]), "DP reconstruction failed");
      l1 -= static_cast<std::size_t>(s1[j]);
    } else {
      on_m2[j] = 1;
    }
  }
  return true;
}

inline R2Result r2_exact(std::span<const R2Job> jobs) {
  for (const auto& job : jobs) BISCHED_CHECK(job.p1 >= 0 && job.p2 >= 0, "negative time");
  const R2Result ub = bisched::r2_greedy(jobs);
  if (ub.cmax == 0) return ub;

  std::vector<i64> s1(jobs.size()), s2(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    s1[j] = jobs[j].p1;
    s2[j] = jobs[j].p2;
  }
  i64 lo = 0, hi = ub.cmax;
  std::vector<std::uint8_t> best_assignment = ub.on_machine2;
  while (lo < hi) {
    const i64 mid = lo + (hi - lo) / 2;
    std::vector<std::uint8_t> on_m2;
    if (scaled_feasible(s1, s2, mid, on_m2)) {
      hi = mid;
      best_assignment = std::move(on_m2);
    } else {
      lo = mid + 1;
    }
  }
  R2Result r = finalize(jobs, std::move(best_assignment));
  BISCHED_CHECK(r.cmax == lo, "exact DP produced inconsistent optimum");
  return r;
}

inline R2Result r2_fptas(std::span<const R2Job> jobs, double eps) {
  BISCHED_CHECK(eps > 0, "eps must be positive");
  for (const auto& job : jobs) BISCHED_CHECK(job.p1 >= 0 && job.p2 >= 0, "negative time");
  const R2Result greedy = bisched::r2_greedy(jobs);
  if (greedy.cmax == 0 || jobs.empty()) return greedy;

  const auto n = static_cast<i64>(jobs.size());
  i64 lb = 1;
  i64 sum_min = 0;
  for (const auto& job : jobs) {
    lb = std::max(lb, std::min(job.p1, job.p2));
    sum_min += std::min(job.p1, job.p2);
  }
  lb = std::max(lb, (sum_min + 1) / 2);

  auto feasible = [&](i64 t, std::vector<std::uint8_t>* out) {
    const i64 delta = std::max<i64>(
        1, static_cast<i64>(eps * static_cast<double>(t) / static_cast<double>(n)));
    const i64 budget = t / delta;
    std::vector<i64> s1(jobs.size()), s2(jobs.size());
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      s1[j] = jobs[j].p1 / delta;
      s2[j] = jobs[j].p2 / delta;
    }
    std::vector<std::uint8_t> on_m2;
    if (!scaled_feasible(s1, s2, budget, on_m2)) return false;
    if (out != nullptr) *out = std::move(on_m2);
    return true;
  };

  i64 lo = std::min(lb, greedy.cmax), hi = greedy.cmax;
  while (lo < hi) {
    const i64 mid = lo + (hi - lo) / 2;
    if (feasible(mid, nullptr)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  std::vector<std::uint8_t> on_m2;
  const bool ok = feasible(lo, &on_m2);
  BISCHED_CHECK(ok, "FPTAS terminal feasibility check failed");
  return finalize(jobs, std::move(on_m2));
}

// ---- seed R3 kernel --------------------------------------------------------

inline R3Result r3_finalize(std::span<const R3Job> jobs,
                            std::vector<std::uint8_t> machine_of) {
  R3Result r;
  r.machine_of = std::move(machine_of);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    switch (r.machine_of[j]) {
      case 0:
        r.loads[0] += jobs[j].p1;
        break;
      case 1:
        r.loads[1] += jobs[j].p2;
        break;
      default:
        r.loads[2] += jobs[j].p3;
        break;
    }
  }
  r.cmax = std::max({r.loads[0], r.loads[1], r.loads[2]});
  return r;
}

inline bool r3_scaled_feasible(std::span<const i64> s1, std::span<const i64> s2,
                               std::span<const i64> s3, i64 budget,
                               std::vector<std::uint8_t>& machine_of) {
  const std::size_t n = s1.size();
  const auto width = static_cast<std::size_t>(budget) + 1;
  BISCHED_CHECK(static_cast<double>(n) * static_cast<double>(width) * width <= 4e8,
                "R3 DP table too large; raise eps or shrink the instance");

  const std::size_t cells = width * width;
  constexpr std::uint8_t kNoChoice = 255;
  std::vector<i64> cur(cells, kInf);
  std::vector<i64> next(cells);
  std::vector<std::uint8_t> choice(n * cells, kNoChoice);
  cur[0] = 0;

  for (std::size_t j = 0; j < n; ++j) {
    std::fill(next.begin(), next.end(), kInf);
    std::uint8_t* choice_j = choice.data() + j * cells;
    for (std::size_t l1 = 0; l1 < width; ++l1) {
      for (std::size_t l2 = 0; l2 < width; ++l2) {
        const i64 l3 = cur[l1 * width + l2];
        if (l3 == kInf) continue;
        const i64 n3 = l3 + s3[j];
        if (n3 < next[l1 * width + l2]) {
          next[l1 * width + l2] = n3;
          choice_j[l1 * width + l2] = 2;
        }
        const std::size_t n1 = l1 + static_cast<std::size_t>(s1[j]);
        if (n1 < width && l3 < next[n1 * width + l2]) {
          next[n1 * width + l2] = l3;
          choice_j[n1 * width + l2] = 0;
        }
        const std::size_t n2 = l2 + static_cast<std::size_t>(s2[j]);
        if (n2 < width && l3 < next[l1 * width + n2]) {
          next[l1 * width + n2] = l3;
          choice_j[l1 * width + n2] = 1;
        }
      }
    }
    cur.swap(next);
  }

  std::size_t best = cells;
  for (std::size_t state = 0; state < cells; ++state) {
    if (cur[state] <= budget) {
      best = state;
      break;
    }
  }
  if (best == cells) return false;

  machine_of.assign(n, 0);
  std::size_t l1 = best / width;
  std::size_t l2 = best % width;
  for (std::size_t j = n; j-- > 0;) {
    const std::uint8_t c = choice[j * cells + l1 * width + l2];
    BISCHED_CHECK(c != kNoChoice, "R3 DP reconstruction hit an unreachable state");
    machine_of[j] = c;
    if (c == 0) {
      l1 -= static_cast<std::size_t>(s1[j]);
    } else if (c == 1) {
      l2 -= static_cast<std::size_t>(s2[j]);
    }
  }
  return true;
}

inline R3Result r3_fptas(std::span<const R3Job> jobs, double eps) {
  BISCHED_CHECK(eps > 0, "eps must be positive");
  for (const auto& job : jobs) {
    BISCHED_CHECK(job.p1 >= 0 && job.p2 >= 0 && job.p3 >= 0, "negative time");
  }
  const R3Result greedy = bisched::r3_greedy(jobs);
  if (greedy.cmax == 0 || jobs.empty()) return greedy;

  const auto n = static_cast<i64>(jobs.size());
  i64 lb = 1;
  i64 sum_min = 0;
  for (const auto& job : jobs) {
    const i64 mn = std::min({job.p1, job.p2, job.p3});
    lb = std::max(lb, mn);
    sum_min += mn;
  }
  lb = std::max(lb, (sum_min + 2) / 3);

  auto feasible = [&](i64 t, std::vector<std::uint8_t>* out) {
    const i64 delta = std::max<i64>(
        1, static_cast<i64>(eps * static_cast<double>(t) / static_cast<double>(n)));
    const i64 budget = t / delta;
    std::vector<i64> s1(jobs.size()), s2(jobs.size()), s3(jobs.size());
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      s1[j] = jobs[j].p1 / delta;
      s2[j] = jobs[j].p2 / delta;
      s3[j] = jobs[j].p3 / delta;
    }
    std::vector<std::uint8_t> machine_of;
    if (!r3_scaled_feasible(s1, s2, s3, budget, machine_of)) return false;
    if (out != nullptr) *out = std::move(machine_of);
    return true;
  };

  i64 lo = std::min(lb, greedy.cmax), hi = greedy.cmax;
  while (lo < hi) {
    const i64 mid = lo + (hi - lo) / 2;
    if (feasible(mid, nullptr)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  std::vector<std::uint8_t> machine_of;
  const bool ok = feasible(lo, &machine_of);
  BISCHED_CHECK(ok, "R3 FPTAS terminal feasibility check failed");
  return r3_finalize(jobs, std::move(machine_of));
}

// ---- seed Dinic (intrusive adjacency lists + std::queue BFS) ---------------

class Dinic {
 public:
  static constexpr std::int64_t kCapInfinity = INT64_MAX / 4;

  explicit Dinic(int num_nodes)
      : head_(static_cast<std::size_t>(num_nodes), -1),
        level_(static_cast<std::size_t>(num_nodes), -1),
        iter_(static_cast<std::size_t>(num_nodes), -1) {
    BISCHED_CHECK(num_nodes >= 0, "negative node count");
  }

  int num_nodes() const { return static_cast<int>(head_.size()); }

  int add_edge(int u, int v, std::int64_t capacity) {
    BISCHED_CHECK(u >= 0 && u < num_nodes() && v >= 0 && v < num_nodes(),
                  "flow edge endpoint out of range");
    BISCHED_CHECK(capacity >= 0, "negative capacity");
    const int id = static_cast<int>(edges_.size());
    edges_.push_back({v, head_[static_cast<std::size_t>(u)], capacity});
    head_[static_cast<std::size_t>(u)] = id;
    edges_.push_back({u, head_[static_cast<std::size_t>(v)], 0});
    head_[static_cast<std::size_t>(v)] = id + 1;
    return id;
  }

  std::int64_t max_flow(int s, int t) {
    BISCHED_CHECK(s != t, "source equals sink");
    std::int64_t flow = 0;
    while (bfs(s, t)) {
      iter_ = head_;
      flow += dfs(s, t, kCapInfinity);
    }
    return flow;
  }

  std::int64_t flow_on(int id) const {
    BISCHED_CHECK(id >= 0 && id + 1 < static_cast<int>(edges_.size()), "bad edge id");
    return edges_[static_cast<std::size_t>(id ^ 1)].cap;
  }

  std::vector<std::uint8_t> min_cut_source_side(int s) const {
    std::vector<std::uint8_t> reachable(head_.size(), 0);
    std::queue<int> queue;
    reachable[static_cast<std::size_t>(s)] = 1;
    queue.push(s);
    while (!queue.empty()) {
      const int u = queue.front();
      queue.pop();
      for (int e = head_[static_cast<std::size_t>(u)]; e != -1;
           e = edges_[static_cast<std::size_t>(e)].next) {
        const auto& edge = edges_[static_cast<std::size_t>(e)];
        if (edge.cap > 0 && !reachable[static_cast<std::size_t>(edge.to)]) {
          reachable[static_cast<std::size_t>(edge.to)] = 1;
          queue.push(edge.to);
        }
      }
    }
    return reachable;
  }

 private:
  struct Edge {
    int to;
    int next;
    std::int64_t cap;
  };

  bool bfs(int s, int t) {
    std::fill(level_.begin(), level_.end(), -1);
    std::queue<int> queue;
    level_[static_cast<std::size_t>(s)] = 0;
    queue.push(s);
    while (!queue.empty()) {
      const int u = queue.front();
      queue.pop();
      for (int e = head_[static_cast<std::size_t>(u)]; e != -1;
           e = edges_[static_cast<std::size_t>(e)].next) {
        const auto& edge = edges_[static_cast<std::size_t>(e)];
        if (edge.cap > 0 && level_[static_cast<std::size_t>(edge.to)] == -1) {
          level_[static_cast<std::size_t>(edge.to)] =
              level_[static_cast<std::size_t>(u)] + 1;
          queue.push(edge.to);
        }
      }
    }
    return level_[static_cast<std::size_t>(t)] != -1;
  }

  std::int64_t dfs(int u, int t, std::int64_t limit) {
    if (u == t) return limit;
    std::int64_t pushed_total = 0;
    for (int& e = iter_[static_cast<std::size_t>(u)]; e != -1;
         e = edges_[static_cast<std::size_t>(e)].next) {
      auto& edge = edges_[static_cast<std::size_t>(e)];
      if (edge.cap <= 0 ||
          level_[static_cast<std::size_t>(edge.to)] !=
              level_[static_cast<std::size_t>(u)] + 1) {
        continue;
      }
      const std::int64_t pushed = dfs(edge.to, t, std::min(limit, edge.cap));
      if (pushed == 0) continue;
      edge.cap -= pushed;
      edges_[static_cast<std::size_t>(e ^ 1)].cap += pushed;
      pushed_total += pushed;
      limit -= pushed;
      if (limit == 0) break;
    }
    if (pushed_total == 0) level_[static_cast<std::size_t>(u)] = -1;
    return pushed_total;
  }

  std::vector<Edge> edges_;
  std::vector<int> head_;
  std::vector<int> level_;
  std::vector<int> iter_;
};

}  // namespace bisched::reference

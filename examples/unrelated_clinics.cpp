// Two specialized clinics (unrelated machines): each patient needs a
// different amount of time at each clinic (language, mobility, paperwork),
// and conflicting patients cannot share a clinic. This is
// R2|G=bipartite|Cmax — the example runs Algorithm 4 (2-approx), Algorithm 5
// (FPTAS) at several precisions, and the exact reduction-based optimum.
//
//   $ ./examples/unrelated_clinics [patients_per_group]
#include <cstdlib>
#include <iostream>

#include "core/r2_algorithms.hpp"
#include "random/generators.hpp"
#include "util/prng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace bisched;

  const int half = argc > 1 ? std::atoi(argv[1]) : 150;
  Rng rng(7);

  // Sparse conflicts: a few dozen known pairs per hundred patients.
  Graph conflicts = random_bipartite_edges(half, half, half / 2, rng);

  // Clinic times: clinic A is generally faster, but some patients (say, those
  // needing an interpreter only clinic B has) run much faster at B.
  std::vector<std::vector<std::int64_t>> minutes(2,
                                                 std::vector<std::int64_t>(2 * half));
  for (int j = 0; j < 2 * half; ++j) {
    const bool needs_b = rng.bernoulli(0.3);
    minutes[0][static_cast<std::size_t>(j)] = needs_b ? rng.uniform_int(40, 90)
                                                      : rng.uniform_int(10, 25);
    minutes[1][static_cast<std::size_t>(j)] = needs_b ? rng.uniform_int(10, 25)
                                                      : rng.uniform_int(20, 45);
  }
  const auto inst = make_unrelated_instance(std::move(minutes), std::move(conflicts));

  std::cout << "Patients: " << inst.num_jobs() << ", conflicts: "
            << inst.conflicts.num_edges() << ", clinics: 2\n\n";

  TextTable t("Clinic-day length (minutes)");
  t.set_header({"plan", "makespan", "vs optimum", "ms"});

  Timer timer;
  const auto exact = r2_exact_bipartite(inst);
  const double exact_ms = timer.millis();
  t.add_row({"exact (reduction + DP)", std::to_string(exact.cmax), "1.0000",
             fmt_double(exact_ms, 2)});

  timer.reset();
  const auto two = r2_two_approx(inst);
  t.add_row({"Algorithm 4 (2-approx, O(n))", std::to_string(two.cmax),
             fmt_ratio(static_cast<double>(two.cmax) / exact.cmax),
             fmt_double(timer.millis(), 2)});

  for (double eps : {0.5, 0.1, 0.01}) {
    timer.reset();
    const auto fpt = r2_fptas_bipartite(inst, eps);
    t.add_row({"Algorithm 5 (eps=" + fmt_double(eps, 2) + ")", std::to_string(fpt.cmax),
               fmt_ratio(static_cast<double>(fpt.cmax) / exact.cmax),
               fmt_double(timer.millis(), 2)});
  }
  t.print(std::cout);

  std::cout << "\nTheorem 22: Algorithm 5's makespan is at most (1+eps) times optimal;\n"
               "Theorem 24: with three or more clinics no such guarantee can exist.\n";
  return validate(inst, two.schedule) == ScheduleStatus::kValid ? 0 : 1;
}

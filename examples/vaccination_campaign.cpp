// The paper's motivating scenario (Section 1): inoculate a population of two
// groups at medical facilities of different daily capacity, never assigning
// two conflicting people (one from each group) to the same facility.
//
// People  = unit jobs, conflicts = a Gilbert random bipartite graph,
// facilities = uniform machines whose integer speeds are daily capacities.
// Makespan = days until the campaign completes.
//
//   $ ./examples/vaccination_campaign [population_per_group] [conflict_rate_a]
#include <cstdlib>
#include <iostream>

#include "core/alg_random.hpp"
#include "core/baselines.hpp"
#include "random/generators.hpp"
#include "random/gilbert.hpp"
#include "sched/lower_bounds.hpp"
#include "util/prng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace bisched;

  const int group_size = argc > 1 ? std::atoi(argv[1]) : 400;
  const double a = argc > 2 ? std::atof(argv[2]) : 2.0;  // conflicts ~ G(n,n,a/n)

  Rng rng(2022);
  Graph conflicts = gilbert_bipartite(group_size, a / group_size, rng);

  // Facilities: one large hospital, two clinics, three pop-up sites (daily
  // throughput as machine speed).
  const std::vector<std::int64_t> daily_capacity{220, 90, 90, 30, 30, 30};
  const auto inst = make_uniform_instance(unit_weights(2 * group_size), daily_capacity,
                                          std::move(conflicts));

  std::cout << "Population: " << inst.num_jobs() << " people in two groups, "
            << inst.conflicts.num_edges() << " pairwise conflicts\n";
  std::cout << "Facilities: " << inst.num_machines() << " (daily capacities 220..30)\n\n";

  const Rational lb = lower_bound(inst);
  const Alg2Result plan = alg2_random_bipartite(inst);
  const BaselineResult naive = two_color_split(inst);

  TextTable t("Campaign length (days)");
  t.set_header({"plan", "days (exact)", "days", "vs lower bound"});
  t.add_row({"lower bound (any plan)", lb.to_string(), fmt_double(lb.to_double(), 2), "1.00"});
  t.add_row({"Algorithm 2 (paper)", plan.cmax.to_string(),
             fmt_double(plan.cmax.to_double(), 2),
             fmt_double(plan.cmax.to_double() / lb.to_double(), 2)});
  t.add_row({"naive two-facility split", naive.cmax.to_string(),
             fmt_double(naive.cmax.to_double(), 2),
             fmt_double(naive.cmax.to_double() / lb.to_double(), 2)});
  t.print(std::cout);

  TextTable loads("Algorithm 2: people per facility");
  loads.set_header({"facility", "daily capacity", "people", "days"});
  const auto per_machine = machine_loads(inst, plan.schedule);
  for (int i = 0; i < inst.num_machines(); ++i) {
    const Rational days(per_machine[static_cast<std::size_t>(i)],
                        inst.speeds[static_cast<std::size_t>(i)]);
    loads.add_row({"F" + std::to_string(i + 1),
                   std::to_string(inst.speeds[static_cast<std::size_t>(i)]),
                   std::to_string(per_machine[static_cast<std::size_t>(i)]),
                   fmt_double(days.to_double(), 2)});
  }
  loads.print(std::cout);

  std::cout << "\nTheorem 19: for conflict graphs drawn from G(n,n,p) this plan is\n"
               "asymptotically almost surely within twice the optimal campaign length.\n";
  return validate(inst, plan.schedule) == ScheduleStatus::kValid ? 0 : 1;
}

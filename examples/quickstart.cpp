// Quickstart: build a small uniform-machine instance with a bipartite
// incompatibility graph, run the paper's algorithms, and print the schedules.
//
//   $ ./examples/quickstart
#include <iostream>

#include "core/alg_sqrt.hpp"
#include "core/exact_bb.hpp"
#include "sched/instance.hpp"
#include "sched/lower_bounds.hpp"
#include "util/table.hpp"

int main() {
  using namespace bisched;

  // Eight jobs; conflicts form the bipartite graph
  //   0-4, 0-5, 1-5, 2-6, 3-7   (jobs {0..3} vs jobs {4..7}).
  Graph conflicts(8);
  conflicts.add_edge(0, 4);
  conflicts.add_edge(0, 5);
  conflicts.add_edge(1, 5);
  conflicts.add_edge(2, 6);
  conflicts.add_edge(3, 7);

  // Processing requirements and three machines with speeds 4 : 2 : 1.
  const UniformInstance inst =
      make_uniform_instance({9, 7, 5, 4, 6, 3, 2, 1}, {4, 2, 1}, std::move(conflicts));

  std::cout << "Instance: " << inst.num_jobs() << " jobs, " << inst.num_machines()
            << " machines, total work " << inst.total_work() << "\n";
  std::cout << "Certified lower bound on C*_max: " << lower_bound(inst).to_string() << "\n\n";

  // Algorithm 1 — the paper's sqrt(sum p_j)-approximation (Theorem 9).
  const Alg1Result approx = alg1_sqrt_approx(inst);
  std::cout << "Algorithm 1 makespan: " << approx.cmax.to_string()
            << (approx.used_s2 ? "  (machine-prefix schedule S2 won)"
                               : "  (two-machine schedule S1 won)")
            << "\n";

  // Exact optimum for reference (branch and bound; small instances only).
  const ExactUniformResult exact = exact_uniform_bb(inst);
  std::cout << "Exact optimum:        " << exact.cmax.to_string() << "\n\n";

  TextTable t("Algorithm 1 schedule");
  t.set_header({"job", "p_j", "machine", "speed"});
  for (int j = 0; j < inst.num_jobs(); ++j) {
    const int i = approx.schedule.machine_of[static_cast<std::size_t>(j)];
    t.add_row({std::to_string(j), std::to_string(inst.p[static_cast<std::size_t>(j)]),
               "M" + std::to_string(i + 1),
               std::to_string(inst.speeds[static_cast<std::size_t>(i)])});
  }
  t.print(std::cout);

  return validate(inst, approx.schedule) == ScheduleStatus::kValid ? 0 : 1;
}

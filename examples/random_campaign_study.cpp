// Monte-Carlo study of Algorithm 2 across the paper's random-graph regimes —
// a user-facing version of the T19 experiment, parallelized with the
// library's thread pool (each trial is an independent G(n,n,p) realization).
//
//   $ ./examples/random_campaign_study [n] [trials]
#include <cstdlib>
#include <iostream>

#include "core/alg_random.hpp"
#include "random/generators.hpp"
#include "random/gilbert.hpp"
#include "sched/lower_bounds.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace bisched;

  const int n = argc > 1 ? std::atoi(argv[1]) : 500;
  const int trials = argc > 2 ? std::atoi(argv[2]) : 12;

  struct Regime {
    const char* label;
    double p;
  };
  const std::vector<Regime> regimes{
      {"a/n, a=0.5", 0.5 / n}, {"a/n, a=1", 1.0 / n},   {"a/n, a=2", 2.0 / n},
      {"a/n, a=4", 4.0 / n},   {"log n/n", p_log_over_n(n)},
  };

  std::cout << "Algorithm 2 on G(" << n << "," << n << ",p), " << trials
            << " trials per regime, " << default_thread_count() << " thread(s)\n";

  TextTable t("Makespan ratio to certified lower bound");
  t.set_header({"regime", "mean", "stddev", "max", "<=2 freq"});
  for (const auto& regime : regimes) {
    const auto ratios = monte_carlo(
        static_cast<std::size_t>(trials),
        [&](std::uint64_t seed) {
          Rng rng(seed);
          Graph g = gilbert_bipartite(n, regime.p, rng);
          const auto inst = make_uniform_instance(unit_weights(2 * n),
                                                  {50, 20, 10, 5, 2, 1}, std::move(g));
          const auto r = alg2_random_bipartite(inst);
          return r.cmax.to_double() / lower_bound(inst).to_double();
        },
        /*base_seed=*/97);
    const Summary s = summarize(ratios);
    int within = 0;
    for (double r : ratios) within += r <= 2.0 + 1e-9;
    t.add_row({regime.label, fmt_ratio(s.mean), fmt_ratio(s.stddev), fmt_ratio(s.max),
               fmt_ratio(static_cast<double>(within) / trials)});
  }
  t.print(std::cout);
  std::cout << "\nTheorem 19 predicts the '<=2 freq' column tends to 1 as n grows.\n";
  return 0;
}
